"""Closed- and open-loop load generation for benchmark scenarios.

A throughput number is only comparable when the workload behind it is
reproducible.  This module turns a seed into an exact stream of
operations — Zipf-skewed query selection over a fixed pool, a declared
search/insert/append mix, payloads derived per-operation from spawned
RNGs — so two runs with the same :class:`WorkloadSpec` and seed execute
byte-identical request sequences (an acceptance criterion of the bench
subsystem, covered by ``tests/test_bench_workload.py``).

Two drivers execute a generated stream against any
:class:`WorkloadTarget` (a ``QueryEngine``, a cluster adapter, or a fake
in tests):

* :func:`run_closed_loop` — a fixed number of worker threads each issue
  the next operation as soon as the previous one completes.  Throughput
  is *demand-limited*: the system is always saturated at the given
  concurrency, which is the right shape for peak-QPS measurement.
* :func:`run_open_loop` — operations arrive on a Poisson schedule at a
  target rate regardless of completion.  Latency is measured from the
  *intended arrival time*, so queueing delay under overload is visible
  (the coordinated-omission correction closed loops cannot provide).

Both drivers compose with the deterministic fault machinery: pass a
``REPRO_FAULTS``-grammar string via ``faults=`` and the plan is armed
around the run, giving chaos-under-load measurements with no extra code.
"""

from __future__ import annotations

import math
import threading
import time
from collections.abc import Callable, Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Protocol

import numpy as np
import numpy.typing as npt

from repro.service.client import TRANSPORT_ERRORS
from repro.service.errors import ServiceError
from repro.util.budget import OperationCancelled
from repro.util.errtrace import record_swallowed
from repro.util.faults import FaultInjected, fault_plan, parse_fault_spec
from repro.util.rng import SeedLike, ensure_rng, spawn_rngs
from repro.util.sync import TracedLock
from repro.util.validation import (
    check_dimension,
    check_positive,
    check_threshold,
)

__all__ = [
    "Operation",
    "OperationMix",
    "WorkloadReport",
    "WorkloadSpec",
    "WorkloadTarget",
    "generate_operations",
    "nearest_rank_quantile",
    "run_closed_loop",
    "run_open_loop",
    "zipf_weights",
]


class WorkloadTarget(Protocol):
    """What a workload can be driven against.

    ``repro.service.QueryEngine`` satisfies this directly; the cluster
    scenario wraps its coordinator in a thin adapter.  Return values are
    ignored by the drivers — only latency and success/failure count.
    """

    def search(
        self, query: npt.NDArray[np.float64], epsilon: float
    ) -> object:
        """Run a similarity search."""
        ...

    def insert(
        self, points: npt.NDArray[np.float64], sequence_id: object = None
    ) -> object:
        """Add a new sequence."""
        ...

    def append(
        self, sequence_id: object, points: npt.NDArray[np.float64]
    ) -> object:
        """Extend an existing sequence."""
        ...


@dataclass(frozen=True)
class OperationMix:
    """Relative weights of the three operation kinds.

    Weights need not sum to one; they are normalised.  The default is a
    read-only workload.
    """

    search: float = 1.0
    insert: float = 0.0
    append: float = 0.0

    def __post_init__(self) -> None:
        for name, weight in self.as_dict().items():
            check_positive(f"mix.{name}", weight, strict=False)
        if self.search + self.insert + self.append <= 0:
            raise ValueError("operation mix weights must not all be zero")

    def as_dict(self) -> dict[str, float]:
        """The weights keyed by operation kind."""
        return {
            "search": self.search,
            "insert": self.insert,
            "append": self.append,
        }

    def probabilities(self) -> tuple[float, float, float]:
        """``(search, insert, append)`` normalised to sum to one."""
        total = self.search + self.insert + self.append
        return (
            self.search / total,
            self.insert / total,
            self.append / total,
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """The deterministic description of one workload.

    Parameters
    ----------
    operations:
        Total operations in the stream.
    query_pool:
        Number of distinct queries available; searches pick from this
        pool with Zipf skew (rank 0 is hottest).
    dimension:
        Point dimensionality of generated insert/append payloads.
    mix:
        Relative operation-kind weights.
    epsilons:
        Thresholds cycled round-robin across search operations, so every
        threshold is exercised evenly regardless of stream length.
    zipf_s:
        Zipf exponent for query selection; ``0`` is uniform, larger is
        more skewed (``~1.1`` resembles observed query popularity).
    insert_length / append_length:
        Points per generated insert payload / append extension.
    """

    operations: int
    query_pool: int
    dimension: int
    mix: OperationMix = field(default_factory=OperationMix)
    epsilons: tuple[float, ...] = (0.1,)
    zipf_s: float = 1.1
    insert_length: int = 32
    append_length: int = 8

    def __post_init__(self) -> None:
        check_positive("operations", self.operations)
        check_positive("query_pool", self.query_pool)
        check_dimension("dimension", self.dimension)
        check_positive("zipf_s", self.zipf_s, strict=False)
        check_positive("insert_length", self.insert_length)
        check_positive("append_length", self.append_length)
        if not self.epsilons:
            raise ValueError("epsilons must contain at least one threshold")
        for value in self.epsilons:
            check_threshold(value, dimension=self.dimension)


@dataclass(frozen=True)
class Operation:
    """One generated operation in a workload stream.

    ``query_index`` is ``-1`` and ``epsilon`` is ``0.0`` for writes;
    ``sequence_id`` is ``None`` and ``length`` is ``0`` for searches.
    """

    index: int
    kind: str
    epsilon: float = 0.0
    query_index: int = -1
    sequence_id: str | None = None
    length: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("search", "insert", "append"):
            raise ValueError(
                f"operation kind must be search/insert/append, got "
                f"{self.kind!r}"
            )


def zipf_weights(count: int, s: float) -> npt.NDArray[np.float64]:
    """Normalised Zipf selection weights for ranks ``0..count-1``.

    ``P(rank) ∝ 1 / (rank + 1) ** s`` — ``s=0`` degenerates to uniform.
    """
    check_positive("count", count)
    check_positive("s", s, strict=False)
    ranks = np.arange(1, count + 1, dtype=np.float64)
    weights = ranks ** (-float(s))
    result: npt.NDArray[np.float64] = weights / weights.sum()
    return result


def generate_operations(
    spec: WorkloadSpec,
    *,
    seed: SeedLike = None,
    existing_ids: Sequence[str] = (),
) -> list[Operation]:
    """Expand a spec into its exact operation stream.

    The stream is a pure function of ``(spec, seed, existing_ids)``:
    the same inputs always produce the same list, element for element.

    ``existing_ids`` are the sequence ids already present in the target;
    appends target only these (never sequences inserted by the workload
    itself, which under concurrency might not exist yet when the append
    runs).
    """
    rng = ensure_rng(seed)
    probabilities = np.asarray(spec.mix.probabilities())
    if probabilities[2] > 0 and not existing_ids:
        raise ValueError(
            "the mix includes appends but existing_ids is empty; appends "
            "target pre-existing sequences only"
        )
    weights = zipf_weights(spec.query_pool, spec.zipf_s)
    kinds = ("search", "insert", "append")
    operations: list[Operation] = []
    searches = 0
    for index in range(spec.operations):
        kind = kinds[int(rng.choice(3, p=probabilities))]
        if kind == "search":
            operations.append(
                Operation(
                    index=index,
                    kind="search",
                    epsilon=float(spec.epsilons[searches % len(spec.epsilons)]),
                    query_index=int(rng.choice(spec.query_pool, p=weights)),
                )
            )
            searches += 1
        elif kind == "insert":
            operations.append(
                Operation(
                    index=index,
                    kind="insert",
                    sequence_id=f"bench-insert-{index}",
                    length=spec.insert_length,
                )
            )
        else:
            operations.append(
                Operation(
                    index=index,
                    kind="append",
                    sequence_id=str(rng.choice(np.asarray(existing_ids))),
                    length=spec.append_length,
                )
            )
    return operations


def nearest_rank_quantile(values: Sequence[float], q: float) -> float:
    """The nearest-rank quantile, matching ``service.stats.LatencyWindow``.

    Returns ``0.0`` for an empty sequence so metric dictionaries stay
    finite even when a run completed nothing.
    """
    if not 0.0 < q <= 1.0:
        raise ValueError(f"q must be in (0, 1], got {q!r}")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, math.ceil(q * len(ordered)) - 1)
    return float(ordered[rank])


@dataclass(frozen=True)
class WorkloadReport:
    """The outcome of one driver run."""

    total: int
    completed: int
    errors: int
    elapsed_s: float
    latencies_ms: tuple[float, ...]

    def metrics(self) -> dict[str, float]:
        """The comparable numbers: throughput and latency quantiles."""
        qps = self.completed / self.elapsed_s if self.elapsed_s > 0 else 0.0
        return {
            "qps": qps,
            "p50_ms": nearest_rank_quantile(self.latencies_ms, 0.50),
            "p95_ms": nearest_rank_quantile(self.latencies_ms, 0.95),
            "p99_ms": nearest_rank_quantile(self.latencies_ms, 0.99),
            "error_ratio": self.errors / self.total if self.total else 0.0,
        }


class _Cursor:
    """The shared next-operation counter the worker threads pull from."""

    def __init__(self, limit: int) -> None:
        self._lock = TracedLock("bench.workload.cursor")
        self._next = 0
        self._limit = limit

    def take(self) -> int | None:
        """Claim the next operation index, or ``None`` when exhausted."""
        with self._lock:
            if self._next >= self._limit:
                return None
            index = self._next
            self._next += 1
            return index


#: Per-operation failures a load run *measures* rather than aborts on:
#: the typed service taxonomy (including budget exhaustion), injected
#: chaos, transport drops against a remote target, and the engine's own
#: rejection of bad keys/payloads.  Anything outside this tuple is a
#: harness or library bug and must surface, not skew the error rate.
_EXPECTED_ERRORS = (
    FaultInjected,
    OperationCancelled,
    ServiceError,
    KeyError,
    ValueError,
    *TRANSPORT_ERRORS,
)


class _Tally:
    """One worker thread's private latency/error record (unshared)."""

    __slots__ = ("latencies_ms", "errors", "failure")

    def __init__(self) -> None:
        self.latencies_ms: list[float] = []
        self.errors = 0
        self.failure: BaseException | None = None


def _build_payloads(
    operations: Sequence[Operation], dimension: int, seed: SeedLike
) -> dict[int, npt.NDArray[np.float64]]:
    """Deterministic unit-cube payload arrays for every write operation.

    One spawned RNG per operation (indexed by position, not draw order)
    keeps payload content independent of thread interleaving.
    """
    rngs = spawn_rngs(seed, len(operations))
    payloads: dict[int, npt.NDArray[np.float64]] = {}
    for op in operations:
        if op.kind in ("insert", "append"):
            payloads[op.index] = rngs[op.index].random(
                (op.length, dimension)
            )
    return payloads


def _execute(
    target: WorkloadTarget,
    op: Operation,
    queries: Sequence[npt.NDArray[np.float64]],
    payloads: dict[int, npt.NDArray[np.float64]],
) -> None:
    if op.kind == "search":
        target.search(queries[op.query_index], op.epsilon)
    elif op.kind == "insert":
        target.insert(payloads[op.index], sequence_id=op.sequence_id)
    else:
        target.append(op.sequence_id, payloads[op.index])


@contextmanager
def _armed(faults: str | None) -> Iterator[None]:
    """Arm a ``REPRO_FAULTS``-grammar plan around a run, if given."""
    if not faults:
        yield
        return
    with fault_plan(*parse_fault_spec(faults)):
        yield


def _spawn_and_join(
    worker_count: int, runner: Callable[[_Tally], None]
) -> list[_Tally]:
    """Run ``runner(tally)`` on ``worker_count`` threads and join them."""
    tallies = [_Tally() for _ in range(worker_count)]
    threads = [
        threading.Thread(
            target=runner, args=(tally,), name=f"bench-worker-{i}"
        )
        for i, tally in enumerate(tallies)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for tally in tallies:
        if tally.failure is not None:
            raise tally.failure
    return tallies


def _report(
    operations: Sequence[Operation],
    tallies: Sequence[_Tally],
    elapsed_s: float,
) -> WorkloadReport:
    latencies: list[float] = []
    errors = 0
    for tally in tallies:
        latencies.extend(tally.latencies_ms)
        errors += tally.errors
    return WorkloadReport(
        total=len(operations),
        completed=len(latencies),
        errors=errors,
        elapsed_s=elapsed_s,
        latencies_ms=tuple(latencies),
    )


def run_closed_loop(
    target: WorkloadTarget,
    operations: Sequence[Operation],
    *,
    queries: Sequence[npt.NDArray[np.float64]],
    dimension: int,
    concurrency: int = 4,
    seed: SeedLike = None,
    faults: str | None = None,
) -> WorkloadReport:
    """Drive the stream at fixed concurrency until it is exhausted.

    Each of ``concurrency`` threads issues its next operation the moment
    the previous one returns; latency is the service time of each call.
    Payload arrays are derived from ``seed`` *before* timing starts so
    generation cost never pollutes the measurement.
    """
    check_positive("concurrency", concurrency)
    check_dimension("dimension", dimension)
    payloads = _build_payloads(operations, dimension, seed)
    cursor = _Cursor(len(operations))

    def worker(tally: _Tally) -> None:
        while True:
            index = cursor.take()
            if index is None:
                return
            op = operations[index]
            started = time.perf_counter()
            try:
                _execute(target, op, queries, payloads)
            except _EXPECTED_ERRORS as error:
                tally.errors += 1
                # A budget-exhausted op is a *measured* outcome here, not
                # a lost cancellation — the per-op deadline belongs to the
                # request, and the worker's job is to count its fate.
                record_swallowed(
                    error,
                    role="bench.worker",
                    site="run_closed_loop",
                    cancellation_ok=True,
                )
            except BaseException as error:  # error-ok: harness bug — captured and re-raised after join
                tally.failure = error
                return
            else:
                tally.latencies_ms.append(
                    (time.perf_counter() - started) * 1000.0
                )

    with _armed(faults):
        started = time.perf_counter()
        tallies = _spawn_and_join(concurrency, worker)
        elapsed = time.perf_counter() - started
    return _report(operations, tallies, elapsed)


def run_open_loop(
    target: WorkloadTarget,
    operations: Sequence[Operation],
    *,
    queries: Sequence[npt.NDArray[np.float64]],
    dimension: int,
    rate: float,
    workers: int = 8,
    seed: SeedLike = None,
    faults: str | None = None,
) -> WorkloadReport:
    """Drive the stream on a Poisson arrival schedule at ``rate`` ops/s.

    Arrival offsets are sampled deterministically from ``seed`` up
    front.  Latency is measured from each operation's *intended arrival
    time*, so if the target cannot keep up, queueing delay accumulates
    into the recorded latencies instead of silently stretching the run
    (the coordinated-omission correction).
    """
    check_positive("rate", rate)
    check_positive("workers", workers)
    check_dimension("dimension", dimension)
    rng = ensure_rng(seed)
    offsets = np.cumsum(rng.exponential(1.0 / rate, size=len(operations)))
    payloads = _build_payloads(operations, dimension, seed)
    cursor = _Cursor(len(operations))

    def worker(tally: _Tally) -> None:
        while True:
            index = cursor.take()
            if index is None:
                return
            op = operations[index]
            arrival = epoch + float(offsets[index])
            delay = arrival - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            try:
                _execute(target, op, queries, payloads)
            except _EXPECTED_ERRORS as error:
                tally.errors += 1
                # Same contract as the closed-loop worker: a timed-out op
                # is a counted outcome, not a swallowed cancellation.
                record_swallowed(
                    error,
                    role="bench.worker",
                    site="run_open_loop",
                    cancellation_ok=True,
                )
            except BaseException as error:  # error-ok: harness bug — captured and re-raised after join
                tally.failure = error
                return
            else:
                tally.latencies_ms.append(
                    (time.perf_counter() - arrival) * 1000.0
                )

    with _armed(faults):
        epoch = time.perf_counter()
        tallies = _spawn_and_join(workers, worker)
        elapsed = time.perf_counter() - epoch
    return _report(operations, tallies, elapsed)
