"""Declarative service-level objectives over benchmark results.

An SLO rule names one metric of one scenario and bounds it from below
(``floor``, e.g. minimum QPS) or above (``ceiling``, e.g. maximum p99).
Rules are plain data so they can live in code (:data:`DEFAULT_SLO_RULES`,
the generous CI floors), be parsed from the CLI (``--slo
"service/end_to_end:qps>=5"``), or be constructed by tests.

The defaults are deliberately loose — an order of magnitude below what
development hardware achieves — because the CI ``bench-gate`` is a smoke
guard against *collapse* (an accidental O(n²), a recovery path that
re-scans everything, a cluster that stops failing over), not a
microbenchmark flake trap.  Tight regression tracking is the differ's
job (:func:`repro.bench.trajectory.diff_trajectories`), which compares
like hardware against like hardware.
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.bench.result import BenchResult

__all__ = [
    "DEFAULT_SLO_RULES",
    "SloRule",
    "SloViolation",
    "assert_slos",
    "check_slos",
    "parse_slo",
]


@dataclass(frozen=True)
class SloRule:
    """One bound on one metric of one scenario."""

    suite: str
    scenario: str
    metric: str
    floor: float | None = None
    ceiling: float | None = None

    def __post_init__(self) -> None:
        if self.floor is None and self.ceiling is None:
            raise ValueError(
                f"SLO {self.describe_target()} needs a floor or a ceiling"
            )

    def describe_target(self) -> str:
        """``suite/scenario:metric`` — the rule's address."""
        return f"{self.suite}/{self.scenario}:{self.metric}"

    def describe(self) -> str:
        """The rule in ``--slo`` syntax."""
        parts = []
        if self.floor is not None:
            parts.append(f"{self.describe_target()}>={self.floor:g}")
        if self.ceiling is not None:
            parts.append(f"{self.describe_target()}<={self.ceiling:g}")
        return " and ".join(parts)


class SloViolation(RuntimeError):
    """A benchmark result broke a declared objective.

    ``actual`` is ``None`` when the rule's scenario or metric was absent
    from the results — a missing measurement is a violation too, not a
    silent pass (otherwise deleting a scenario would green the gate).
    """

    def __init__(self, rule: SloRule, actual: float | None) -> None:
        if actual is None:
            message = (
                f"SLO {rule.describe()} has no measurement: scenario or "
                f"metric {rule.describe_target()} missing from results"
            )
        elif rule.floor is not None and actual < rule.floor:
            message = (
                f"SLO violated: {rule.describe_target()} = {actual:.4g} "
                f"below floor {rule.floor:g}"
            )
        else:
            message = (
                f"SLO violated: {rule.describe_target()} = {actual:.4g} "
                f"above ceiling {rule.ceiling:g}"
            )
        super().__init__(message)
        self.rule = rule
        self.actual = actual


_SLO_PATTERN = re.compile(
    r"^(?P<suite>[\w-]+)/(?P<scenario>[\w-]+):(?P<metric>[\w-]+)"
    r"(?P<op>>=|<=)(?P<value>[-+0-9.eE]+)$"
)


def parse_slo(expression: str) -> SloRule:
    """Parse ``suite/scenario:metric>=X`` (or ``<=X``) into a rule."""
    match = _SLO_PATTERN.match(expression.strip())
    if match is None:
        raise ValueError(
            f"invalid SLO {expression!r}; expected "
            "'suite/scenario:metric>=VALUE' or '...<=VALUE'"
        )
    value = float(match.group("value"))
    floor = value if match.group("op") == ">=" else None
    ceiling = value if match.group("op") == "<=" else None
    return SloRule(
        suite=match.group("suite"),
        scenario=match.group("scenario"),
        metric=match.group("metric"),
        floor=floor,
        ceiling=ceiling,
    )


#: The generous CI floors: collapse detectors, not perf targets.
DEFAULT_SLO_RULES: tuple[SloRule, ...] = (
    SloRule("engine", "single_query", "qps", floor=2.0),
    SloRule("service", "end_to_end", "qps", floor=2.0),
    SloRule("service", "end_to_end", "p99_ms", ceiling=30_000.0),
    SloRule("service", "end_to_end", "error_ratio", ceiling=0.0),
    SloRule("service", "cache_hit_ratio", "hit_ratio", floor=0.2),
    SloRule("service", "wal_recovery", "recovery_ms", ceiling=60_000.0),
    # Overload acceptance: under ~2x offered load the engine must keep
    # serving at least 70% of its healthy-load QPS as within-deadline
    # completions, burn under 5% of completions on answers nobody waits
    # for, and hold p95 queue wait near the configured AIMD target
    # (0.1s in both profiles; the ceiling leaves transient headroom).
    SloRule("service", "overload_goodput", "goodput_ratio", floor=0.7),
    SloRule(
        "service", "overload_goodput", "wasted_work_ratio", ceiling=0.05
    ),
    SloRule(
        "service", "overload_goodput", "queue_wait_p95_ms", ceiling=150.0
    ),
    SloRule("cluster", "scatter_gather", "complete_ratio", floor=1.0),
    SloRule("cluster", "scatter_gather", "killed_p95_ms", ceiling=30_000.0),
    SloRule("cluster", "replica_catchup", "catchup_s", ceiling=120.0),
)


def check_slos(
    results: Sequence[BenchResult],
    rules: Iterable[SloRule] = DEFAULT_SLO_RULES,
) -> list[SloViolation]:
    """Evaluate rules against results; return every violation.

    Rules for suites with *no results at all* are skipped — a partial
    run (``repro bench --suite engine``) must not trip the service
    floors it never measured.  Within a measured suite, a missing
    scenario or metric *is* a violation.
    """
    by_key = {
        (result.suite, result.scenario): result for result in results
    }
    measured_suites = {result.suite for result in results}
    violations: list[SloViolation] = []
    for rule in rules:
        if rule.suite not in measured_suites:
            continue
        result = by_key.get((rule.suite, rule.scenario))
        actual = (
            result.metrics.get(rule.metric) if result is not None else None
        )
        if actual is None:
            violations.append(SloViolation(rule, None))
            continue
        if rule.floor is not None and actual < rule.floor:
            violations.append(SloViolation(rule, actual))
        elif rule.ceiling is not None and actual > rule.ceiling:
            violations.append(SloViolation(rule, actual))
    return violations


def assert_slos(
    results: Sequence[BenchResult],
    rules: Iterable[SloRule] = DEFAULT_SLO_RULES,
) -> None:
    """Raise the first (most informative) violation, if any."""
    violations = check_slos(results, rules)
    if violations:
        raise violations[0]
