"""The benchmark subsystem: canonical scenarios, load generation, SLOs.

The perf trajectory of this repository lives in ``BENCH_<suite>.json``
files at the repo root, written by ``repro bench`` through this package.
See ``docs/benchmarks.md`` for the schema, the scenario registry, and
how a perf PR lands its before/after numbers.
"""

from __future__ import annotations

from repro.bench.registry import (
    BenchProfile,
    Scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
    suite_names,
)
from repro.bench.result import BenchResult
from repro.bench.runner import BenchRunConfig, BenchRunOutcome, run_bench
from repro.bench.slo import (
    DEFAULT_SLO_RULES,
    SloRule,
    SloViolation,
    assert_slos,
    check_slos,
    parse_slo,
)
from repro.bench.trajectory import (
    SCHEMA_VERSION,
    Regression,
    detect_git_sha,
    detect_machine,
    diff_trajectories,
    load_trajectory,
    metric_direction,
    trajectory_filename,
    validate_trajectory,
    write_trajectory,
)
from repro.bench.workload import (
    Operation,
    OperationMix,
    WorkloadReport,
    WorkloadSpec,
    WorkloadTarget,
    generate_operations,
    nearest_rank_quantile,
    run_closed_loop,
    run_open_loop,
    zipf_weights,
)

__all__ = [
    "DEFAULT_SLO_RULES",
    "SCHEMA_VERSION",
    "BenchProfile",
    "BenchResult",
    "BenchRunConfig",
    "BenchRunOutcome",
    "Operation",
    "OperationMix",
    "Regression",
    "Scenario",
    "SloRule",
    "SloViolation",
    "WorkloadReport",
    "WorkloadSpec",
    "WorkloadTarget",
    "assert_slos",
    "check_slos",
    "detect_git_sha",
    "detect_machine",
    "diff_trajectories",
    "generate_operations",
    "iter_scenarios",
    "load_trajectory",
    "metric_direction",
    "nearest_rank_quantile",
    "parse_slo",
    "register_scenario",
    "run_bench",
    "run_closed_loop",
    "run_open_loop",
    "scenario_names",
    "suite_names",
    "trajectory_filename",
    "validate_trajectory",
    "write_trajectory",
    "zipf_weights",
]
