"""Evaluation metrics of Section 4.2.

Definitions transcribed from the paper:

* **Pruning rate** (4.2.1)::

      PR = (|total seq.| - |retrieved seq.|) / (|total seq.| - |relevant seq.|)

  the fraction of prunable (irrelevant) sequences actually pruned.

* **Solution-interval pruning rate** (4.2.2)::

      PR_SI = (|P_total| - |P_norm|) / (|P_total| - |P_scan|)

  with ``P_total`` the points of the selected sequences, ``P_scan`` the
  exact solution-interval points and ``P_norm`` the ``Dnorm``-approximated
  ones.

* **Recall** (4.2.2)::

      Recall = |P_scan ∩ P_norm| / |P_scan|

* **Response-time ratio** (4.2.3)::

      ratio = time(sequential scan) / time(proposed method)

Degenerate denominators (nothing prunable, empty exact interval) are
defined as the metric's perfect value, which matches how averages over many
queries are reported in the paper.
"""

from __future__ import annotations

from repro.core.solution_interval import IntervalSet

__all__ = [
    "interval_recall",
    "precision",
    "pruning_rate",
    "recall",
    "response_time_ratio",
    "solution_interval_pruning_rate",
]


def pruning_rate(total: int, retrieved: int, relevant: int) -> float:
    """Fraction of prunable sequences actually pruned (PR of 4.2.1).

    Parameters
    ----------
    total:
        Number of sequences in the database.
    retrieved:
        Number of sequences the filter kept (``AS_mbr`` or ``AS_norm``).
    relevant:
        Number of truly relevant sequences (sequential-scan answers).

    Notes
    -----
    Requires ``relevant <= retrieved <= total`` (no false dismissals) —
    violating inputs raise, because they would silently mask a correctness
    bug.  When every sequence is relevant there is nothing to prune and the
    rate is defined as 1.0.
    """
    if not 0 <= relevant <= total:
        raise ValueError(f"relevant={relevant} outside [0, total={total}]")
    if not 0 <= retrieved <= total:
        raise ValueError(f"retrieved={retrieved} outside [0, total={total}]")
    if retrieved < relevant:
        raise ValueError(
            f"retrieved={retrieved} < relevant={relevant}: the filter "
            f"dismissed true answers"
        )
    prunable = total - relevant
    if prunable == 0:
        return 1.0
    return (total - retrieved) / prunable


def solution_interval_pruning_rate(
    total_points: int, candidate_points: int, exact_points: int
) -> float:
    """PR_SI of 4.2.2: fraction of prunable points actually pruned.

    Parameters
    ----------
    total_points:
        Points of the selected sequences (``|P_total|``).
    candidate_points:
        Points in the approximated solution intervals (``|P_norm|``).
    exact_points:
        Points in the exact solution intervals (``|P_scan|``).
    """
    if not 0 <= exact_points <= total_points:
        raise ValueError(
            f"exact_points={exact_points} outside [0, {total_points}]"
        )
    if not 0 <= candidate_points <= total_points:
        raise ValueError(
            f"candidate_points={candidate_points} outside [0, {total_points}]"
        )
    prunable = total_points - exact_points
    if prunable == 0:
        return 1.0
    return (total_points - candidate_points) / prunable


def recall(retrieved: set, relevant: set) -> float:
    """``|retrieved ∩ relevant| / |relevant|`` (1.0 when nothing is relevant)."""
    if not relevant:
        return 1.0
    return len(set(retrieved) & set(relevant)) / len(relevant)


def precision(retrieved: set, relevant: set) -> float:
    """``|retrieved ∩ relevant| / |retrieved|`` (1.0 when nothing retrieved)."""
    if not retrieved:
        return 1.0
    return len(set(retrieved) & set(relevant)) / len(retrieved)


def interval_recall(approximate: IntervalSet, exact: IntervalSet) -> float:
    """Point recall of an approximated solution interval (4.2.2)."""
    if not exact:
        return 1.0
    return approximate.intersection_size(exact) / len(exact)


def response_time_ratio(scan_seconds: float, method_seconds: float) -> float:
    """How many times faster than the sequential scan (4.2.3)."""
    if scan_seconds < 0 or method_seconds < 0:
        raise ValueError("times must be >= 0")
    if method_seconds == 0:
        return float("inf")
    return scan_seconds / method_seconds
