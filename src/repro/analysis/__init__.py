"""Experiment harness: the metrics, parameter grid and runner of Section 4.

* :mod:`repro.analysis.metrics` — pruning rate, PR_SI, recall and the
  response-time ratio, exactly as defined in §4.2.
* :mod:`repro.analysis.experiment` — Table 2's configuration (with
  paper-scale and smoke presets) and the threshold-sweep runner producing
  the series of Figures 6-10.
* :mod:`repro.analysis.report` — plain-text rendering of those series with
  the paper's reported bands attached.
"""

from repro.analysis.calibration import calibrate_epsilon, selectivity_curve
from repro.analysis.experiment import (
    ExperimentConfig,
    ExperimentRunner,
    QueryMetrics,
    ThresholdMetrics,
)
from repro.analysis.metrics import (
    interval_recall,
    precision,
    pruning_rate,
    recall,
    response_time_ratio,
    solution_interval_pruning_rate,
)
from repro.analysis.report import (
    figure_table,
    format_table,
    paper_band_note,
    series,
    sparkline,
    sparkline_panel,
)
from repro.analysis.tracing import TracingSearch, read_trace, search_record

__all__ = [
    "ExperimentConfig",
    "ExperimentRunner",
    "QueryMetrics",
    "ThresholdMetrics",
    "TracingSearch",
    "calibrate_epsilon",
    "figure_table",
    "format_table",
    "interval_recall",
    "paper_band_note",
    "precision",
    "pruning_rate",
    "read_trace",
    "recall",
    "response_time_ratio",
    "search_record",
    "selectivity_curve",
    "series",
    "sparkline",
    "sparkline_panel",
    "solution_interval_pruning_rate",
]
