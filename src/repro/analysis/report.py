"""Plain-text rendering of experiment results in the shape of the figures.

The paper's Figures 6-10 are line charts over the threshold axis; in a
terminal the faithful equivalent is one row per threshold with the figure's
series as columns, plus the paper's reported band for eyeball comparison.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.analysis.experiment import ThresholdMetrics

__all__ = [
    "figure_table",
    "format_table",
    "paper_band_note",
    "series",
    "sparkline",
    "sparkline_panel",
]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(
    values: Iterable[float],
    *,
    low: float | None = None,
    high: float | None = None,
) -> str:
    """Render a numeric series as a unicode sparkline.

    Parameters
    ----------
    values:
        The series (at least one finite value).
    low, high:
        Fixed scale bounds; default to the series' own min/max.  A constant
        series renders at the middle level.
    """
    data = [float(v) for v in values]
    if not data:
        raise ValueError("sparkline requires at least one value")
    lo = min(data) if low is None else float(low)
    hi = max(data) if high is None else float(high)
    if hi <= lo:
        return _SPARK_LEVELS[len(_SPARK_LEVELS) // 2] * len(data)
    span = hi - lo
    marks = []
    for value in data:
        position = (min(max(value, lo), hi) - lo) / span
        marks.append(_SPARK_LEVELS[min(7, int(position * 8))])
    return "".join(marks)


def sparkline_panel(rows: Sequence[ThresholdMetrics], fields: Sequence[str]) -> str:
    """One labelled sparkline per metric over the threshold axis."""
    if not rows:
        raise ValueError("sparkline_panel requires at least one row")
    width = max(len(field) for field in fields)
    lines = [
        f"eps {rows[0].epsilon:.2f}..{rows[-1].epsilon:.2f} "
        f"({len(rows)} points)"
    ]
    for field in fields:
        values = [getattr(row, field) for row in rows]
        lines.append(
            f"{field.rjust(width)}  {sparkline(values)}  "
            f"[{min(values):.3f}, {max(values):.3f}]"
        )
    return "\n".join(lines)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render an aligned monospace table with a header rule."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append(
            [
                f"{value:.3f}" if isinstance(value, float) else str(value)
                for value in row
            ]
        )
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append(
            "  ".join(value.rjust(widths[i]) for i, value in enumerate(row))
        )
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


#: Figure id -> (columns pulled from ThresholdMetrics, paper band text).
_FIGURES = {
    "fig6": (
        ["pr_dmbr", "pr_dnorm"],
        "paper: Dmbr 0.70-0.90, Dnorm 0.76-0.93 (synthetic)",
    ),
    "fig7": (
        ["pr_dmbr", "pr_dnorm"],
        "paper: Dmbr 0.65-0.91, Dnorm 0.73-0.94 (video)",
    ),
    "fig8": (
        ["si_pruning", "si_recall"],
        "paper: pruning 0.60-0.80, recall 0.98-1.00 (synthetic)",
    ),
    "fig9": (
        ["si_pruning", "si_recall"],
        "paper: pruning 0.67-0.94, recall ~1.00 (video)",
    ),
    "fig10": (
        ["response_ratio"],
        "paper: 22-28x (synthetic), 16-23x (video)",
    ),
}


def series(
    rows: Sequence[ThresholdMetrics], fields: Sequence[str]
) -> list[tuple[float, ...]]:
    """Extract ``(epsilon, field...)`` tuples from threshold rows."""
    return [
        tuple([row.epsilon] + [getattr(row, field) for field in fields])
        for row in rows
    ]


def paper_band_note(figure: str) -> str:
    """The paper's reported range for a figure id (``fig6`` .. ``fig10``)."""
    if figure not in _FIGURES:
        raise ValueError(
            f"unknown figure {figure!r}; expected one of {sorted(_FIGURES)}"
        )
    return _FIGURES[figure][1]


def figure_table(figure: str, rows: Sequence[ThresholdMetrics]) -> str:
    """A complete textual 'figure': header, series table, paper band."""
    if figure not in _FIGURES:
        raise ValueError(
            f"unknown figure {figure!r}; expected one of {sorted(_FIGURES)}"
        )
    fields, band = _FIGURES[figure]
    headers = ["epsilon"] + fields
    body = format_table(headers, series(rows, fields))
    return f"{figure}:\n{body}\n({band})"
