"""Threshold calibration: pick an epsilon for a target selectivity.

The paper chooses its threshold range 0.05-0.50 "since it provides enough
coverage for the low and high selectivity in the [0,1)^3 cube".  Users of
the library face the inverse problem: *I want roughly the 1% most similar
sequences — what epsilon is that?*  This module answers it by bisecting the
monotone selectivity(epsilon) curve measured on a sample of queries.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING

import numpy as np

from repro.core.distance import sliding_mean_distances
from repro.core.sequence import MultidimensionalSequence
from repro.util.validation import check_threshold

if TYPE_CHECKING:
    import numpy.typing as npt

    from repro.core.database import SequenceDatabase

__all__ = ["calibrate_epsilon", "selectivity_curve"]


def _query_distances(
    query: MultidimensionalSequence | npt.ArrayLike,
    sequences: Iterable[MultidimensionalSequence],
) -> np.ndarray:
    """Exact D(query, S) for every sequence, as one array."""
    if not isinstance(query, MultidimensionalSequence):
        query = MultidimensionalSequence(query)
    distances = []
    for sequence in sequences:
        if len(query) <= len(sequence):
            row = sliding_mean_distances(query, sequence)
        else:
            row = sliding_mean_distances(sequence, query)
        distances.append(float(row.min()))
    return np.array(distances)


def selectivity_curve(
    database: SequenceDatabase,
    queries: Iterable[MultidimensionalSequence | npt.ArrayLike],
    epsilons: Iterable[float],
) -> list[tuple[float, float]]:
    """Measured mean selectivity (fraction of relevant sequences) per epsilon.

    Parameters
    ----------
    database:
        A :class:`~repro.core.database.SequenceDatabase` (or any mapping of
        id to sequence via ``.ids()``/``.sequence()``).
    queries:
        Sample query sequences.
    epsilons:
        Thresholds to evaluate.

    Returns
    -------
    list of (epsilon, selectivity)
        In the order given.
    """
    sequences = [database.sequence(sid) for sid in database.ids()]
    if not sequences:
        raise ValueError("the database is empty")
    queries = list(queries)
    if not queries:
        raise ValueError("at least one sample query is required")
    per_query = [_query_distances(query, sequences) for query in queries]
    curve = []
    for epsilon in epsilons:
        epsilon = check_threshold(epsilon)
        fractions = [
            float(np.mean(distances <= epsilon)) for distances in per_query
        ]
        curve.append((float(epsilon), float(np.mean(fractions))))
    return curve


def calibrate_epsilon(
    database: SequenceDatabase,
    queries: Iterable[MultidimensionalSequence | npt.ArrayLike],
    target_selectivity: float,
    *,
    tolerance: float = 0.005,
    max_iterations: int = 40,
) -> float:
    """The epsilon whose mean selectivity is closest to the target.

    Bisects over the exact per-sequence distances (computed once per
    query), so the answer is exact up to ``tolerance`` in selectivity or
    the bisection resolution, whichever binds first.

    Parameters
    ----------
    database:
        The corpus to calibrate against.
    queries:
        Sample queries representative of the workload.
    target_selectivity:
        Desired fraction of the corpus returned, in ``(0, 1)``.
    tolerance:
        Acceptable selectivity error.
    max_iterations:
        Bisection cap.
    """
    if not 0.0 < target_selectivity < 1.0:
        raise ValueError(
            f"target_selectivity must be in (0, 1), got {target_selectivity}"
        )
    sequences = [database.sequence(sid) for sid in database.ids()]
    if not sequences:
        raise ValueError("the database is empty")
    queries = list(queries)
    if not queries:
        raise ValueError("at least one sample query is required")
    per_query = [_query_distances(query, sequences) for query in queries]

    def _selectivity(epsilon: float) -> float:
        return float(
            np.mean([np.mean(d <= epsilon) for d in per_query])
        )

    low = 0.0
    high = float(max(d.max() for d in per_query)) + 1e-9
    for _ in range(max_iterations):
        middle = (low + high) / 2.0
        value = _selectivity(middle)
        if abs(value - target_selectivity) <= tolerance:
            return middle
        if value < target_selectivity:
            low = middle
        else:
            high = middle
    return (low + high) / 2.0
