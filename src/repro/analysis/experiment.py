"""The experiment harness: Table 2's parameter grid and Figures 6-10.

The paper's protocol (Section 4):

* two corpora — 1600 synthetic (fractal) and 1408 video sequences — of
  arbitrary lengths 56-512, all 3-dimensional;
* thresholds 0.05 to 0.50 in steps of 0.05 ("enough coverage for the low
  and high selectivity in the [0,1)^3 cube");
* 20 randomly selected queries per threshold, metrics averaged.

:class:`ExperimentConfig` captures the grid (with ``paper_synthetic`` /
``paper_video`` presets and scaled-down smoke variants);
:class:`ExperimentRunner` executes it, producing one
:class:`ThresholdMetrics` row per threshold — the exact series plotted in
Figures 6-10.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.analysis.metrics import (
    pruning_rate,
    recall,
    response_time_ratio,
    solution_interval_pruning_rate,
)
from repro.baselines.sequential import SequentialScan
from repro.core.database import SequenceDatabase
from repro.core.search import SimilaritySearch
from repro.core.sequence import MultidimensionalSequence
from repro.core.solution_interval import IntervalSet
from repro.datagen.fractal import generate_fractal_corpus
from repro.datagen.queries import generate_queries
from repro.datagen.video import generate_video_corpus
from repro.util.rng import ensure_rng
from repro.util.validation import check_threshold

__all__ = ["ExperimentConfig", "ExperimentRunner", "QueryMetrics", "ThresholdMetrics"]

#: Table 2's threshold grid: 0.05 through 0.50.
PAPER_THRESHOLDS = tuple(round(0.05 * i, 2) for i in range(1, 11))


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment's full parameter set (Table 2 + partitioning knobs)."""

    dataset: str = "fractal"  # "fractal" or "video"
    n_sequences: int = 1600
    length_range: tuple[int, int] = (56, 512)
    dimension: int = 3
    thresholds: tuple[float, ...] = PAPER_THRESHOLDS
    queries_per_threshold: int = 20
    query_length_range: tuple[int, int] = (32, 128)
    query_noise: float = 0.01
    cost_constant: float = 0.3
    max_points: int | None = 64
    index_kind: str = "rtree"
    seed: int = 2000

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def paper_synthetic(cls, **overrides: object) -> "ExperimentConfig":
        """Table 2's synthetic column: 1600 fractal sequences."""
        return replace(cls(dataset="fractal", n_sequences=1600), **overrides)

    @classmethod
    def paper_video(cls, **overrides: object) -> "ExperimentConfig":
        """Table 2's video column: 1408 streams."""
        return replace(
            cls(dataset="video", n_sequences=1408, seed=2001), **overrides
        )

    @classmethod
    def smoke_synthetic(cls, **overrides: object) -> "ExperimentConfig":
        """A fast, shape-preserving scale-down for CI-sized runs."""
        return replace(
            cls(
                dataset="fractal",
                n_sequences=200,
                queries_per_threshold=5,
                thresholds=(0.05, 0.15, 0.30, 0.50),
            ),
            **overrides,
        )

    @classmethod
    def smoke_video(cls, **overrides: object) -> "ExperimentConfig":
        """The video counterpart of :meth:`smoke_synthetic`."""
        return replace(
            cls(
                dataset="video",
                n_sequences=200,
                queries_per_threshold=5,
                thresholds=(0.05, 0.15, 0.30, 0.50),
                seed=2001,
            ),
            **overrides,
        )

    def validate(self) -> None:
        if self.dataset not in ("fractal", "video"):
            raise ValueError(f"unknown dataset kind {self.dataset!r}")
        if self.n_sequences < 1:
            raise ValueError("n_sequences must be >= 1")
        if self.queries_per_threshold < 1:
            raise ValueError("queries_per_threshold must be >= 1")
        if not self.thresholds:
            raise ValueError("at least one threshold is required")
        if any(t < 0 for t in self.thresholds):
            raise ValueError("thresholds must be >= 0")


@dataclass(frozen=True)
class QueryMetrics:
    """Per-query raw measurements (aggregated into ThresholdMetrics)."""

    epsilon: float
    n_relevant: int
    n_candidates: int
    n_answers: int
    pr_dmbr: float
    pr_dnorm: float
    answer_recall: float
    si_total_points: int
    si_candidate_points: int
    si_exact_points: int
    si_covered_points: int
    method_seconds: float
    scan_seconds: float


@dataclass(frozen=True)
class ThresholdMetrics:
    """One row of the Figures 6-10 series: averages at one threshold."""

    epsilon: float
    queries: int
    pr_dmbr: float
    pr_dnorm: float
    answer_recall: float
    si_pruning: float
    si_recall: float
    response_ratio: float
    mean_relevant: float
    mean_candidates: float
    mean_answers: float
    method_seconds: float
    scan_seconds: float


class ExperimentRunner:
    """Builds a corpus once and sweeps the threshold grid over it.

    Parameters
    ----------
    config:
        The experiment grid.
    corpus:
        Optional pre-built corpus (list of sequences); generated from the
        config's dataset kind when omitted.

    Examples
    --------
    >>> config = ExperimentConfig.smoke_synthetic(n_sequences=50)
    >>> runner = ExperimentRunner(config)
    >>> rows = runner.run()
    >>> len(rows) == len(config.thresholds)
    True
    """

    def __init__(
        self,
        config: ExperimentConfig,
        corpus: list[MultidimensionalSequence] | None = None,
    ) -> None:
        config.validate()
        self.config = config
        self.corpus = corpus if corpus is not None else self._build_corpus()
        self.database = SequenceDatabase(
            dimension=config.dimension,
            cost_constant=config.cost_constant,
            max_points=config.max_points,
            index_kind=config.index_kind,
        )
        for sequence in self.corpus:
            self.database.add(sequence)
        self.engine = SimilaritySearch(self.database)
        self.scanner = SequentialScan.from_database(self.database)

    def _build_corpus(self) -> list[MultidimensionalSequence]:
        config = self.config
        if config.dataset == "video":
            return generate_video_corpus(
                config.n_sequences,
                length_range=config.length_range,
                seed=config.seed,
            )
        return generate_fractal_corpus(
            config.n_sequences,
            dimension=config.dimension,
            length_range=config.length_range,
            seed=config.seed,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, *, verbose: bool = False) -> list[ThresholdMetrics]:
        """Sweep every configured threshold with fresh random queries."""
        rows = []
        for ordinal, epsilon in enumerate(self.config.thresholds):
            row = self.run_threshold(epsilon, query_seed_offset=ordinal)
            rows.append(row)
            if verbose:
                print(
                    f"eps={row.epsilon:.2f}  PR_mbr={row.pr_dmbr:.3f}  "
                    f"PR_norm={row.pr_dnorm:.3f}  SI={row.si_pruning:.3f}  "
                    f"recall={row.si_recall:.3f}  ratio={row.response_ratio:.1f}"
                )
        return rows

    def run_threshold(
        self, epsilon: float, *, query_seed_offset: int = 0
    ) -> ThresholdMetrics:
        """Run the paper's 20-query average at one threshold."""
        epsilon = check_threshold(epsilon)
        config = self.config
        workload = generate_queries(
            {sid: self.database.sequence(sid) for sid in self.database.ids()},
            config.queries_per_threshold,
            length_range=config.query_length_range,
            noise=config.query_noise,
            seed=ensure_rng(config.seed + 7919 * (query_seed_offset + 1)),
        )
        per_query = [self.measure_query(query, epsilon) for query in workload]
        return self._aggregate(epsilon, per_query)

    def measure_query(
        self, query: MultidimensionalSequence, epsilon: float
    ) -> QueryMetrics:
        """All Figure 6-10 raw numbers for one (query, threshold) pair."""
        epsilon = check_threshold(epsilon)
        started = time.perf_counter()
        result = self.engine.search(query, epsilon, find_intervals=True)
        method_seconds = time.perf_counter() - started

        scan = self.scanner.scan(query, epsilon, find_intervals=True)

        total = len(self.database)
        relevant = scan.answers
        pr_mbr = pruning_rate(total, len(result.candidates), len(relevant))
        pr_norm = pruning_rate(total, len(result.answers), len(relevant))
        answer_recall = recall(set(result.answers), relevant)

        # Solution-interval accounting over the selected (answer) sequences.
        si_total = si_candidate = si_exact = si_covered = 0
        for sequence_id in result.answers:
            length = len(self.database.sequence(sequence_id))
            approx = result.solution_intervals.get(sequence_id, IntervalSet())
            exact = scan.solution_intervals.get(sequence_id, IntervalSet())
            si_total += length
            si_candidate += len(approx)
            si_exact += len(exact)
            si_covered += approx.intersection_size(exact)

        return QueryMetrics(
            epsilon=epsilon,
            n_relevant=len(relevant),
            n_candidates=len(result.candidates),
            n_answers=len(result.answers),
            pr_dmbr=pr_mbr,
            pr_dnorm=pr_norm,
            answer_recall=answer_recall,
            si_total_points=si_total,
            si_candidate_points=si_candidate,
            si_exact_points=si_exact,
            si_covered_points=si_covered,
            method_seconds=method_seconds,
            scan_seconds=scan.seconds,
        )

    @staticmethod
    def _aggregate(
        epsilon: float, per_query: list[QueryMetrics]
    ) -> ThresholdMetrics:
        n = len(per_query)
        si_total = sum(m.si_total_points for m in per_query)
        si_candidate = sum(m.si_candidate_points for m in per_query)
        si_exact = sum(m.si_exact_points for m in per_query)
        si_covered = sum(m.si_covered_points for m in per_query)
        method_seconds = sum(m.method_seconds for m in per_query)
        scan_seconds = sum(m.scan_seconds for m in per_query)
        return ThresholdMetrics(
            epsilon=epsilon,
            queries=n,
            pr_dmbr=sum(m.pr_dmbr for m in per_query) / n,
            pr_dnorm=sum(m.pr_dnorm for m in per_query) / n,
            answer_recall=sum(m.answer_recall for m in per_query) / n,
            si_pruning=solution_interval_pruning_rate(
                si_total, si_candidate, si_exact
            ),
            si_recall=(si_covered / si_exact) if si_exact else 1.0,
            response_ratio=response_time_ratio(scan_seconds, method_seconds),
            mean_relevant=sum(m.n_relevant for m in per_query) / n,
            mean_candidates=sum(m.n_candidates for m in per_query) / n,
            mean_answers=sum(m.n_answers for m in per_query) / n,
            method_seconds=method_seconds,
            scan_seconds=scan_seconds,
        )
