"""Structured query tracing: one JSON line per search.

Production similarity-search services log every query with its outcome and
cost so regressions and workload drift are visible after the fact.  This
module provides that for the library: wrap an engine in
:class:`TracingSearch` and every ``search`` call appends one JSON object to
the trace file (or an in-memory list), capturing the threshold, result
sizes, per-phase timings and index work.

::

    engine = TracingSearch(SimilaritySearch(db), path="queries.jsonl")
    engine.search(query, 0.1)
    ...
    for record in read_trace("queries.jsonl"):
        print(record["epsilon"], record["answers"], record["total_ms"])
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

from repro.core.search import SearchResult, SimilaritySearch
from repro.util.validation import check_threshold

if TYPE_CHECKING:
    from repro.core.sequence import MultidimensionalSequence

__all__ = [
    "SERVICE_TRACE_FIELDS",
    "TRACE_FIELDS",
    "TracingSearch",
    "read_trace",
    "search_record",
]

#: The canonical per-search trace schema, in record order.  Every record
#: written by :func:`search_record` (and therefore by
#: :class:`TracingSearch`) carries exactly these keys.
TRACE_FIELDS: tuple[str, ...] = (
    "timestamp",
    "epsilon",
    "query_points",
    "query_segments",
    "candidates",
    "answers",
    "interval_points",
    "node_accesses",
    "dnorm_evaluations",
    "phase1_ms",
    "phase2_ms",
    "phase3_ms",
    "total_ms",
)

#: The serving layer's per-request record: the canonical schema plus the
#: engine-only context (operation kind, cache outcome, snapshot served).
#: ``tests/test_tracing.py`` asserts both layers actually write these
#: keys, so the schemas cannot silently drift apart.
SERVICE_TRACE_FIELDS: tuple[str, ...] = TRACE_FIELDS + (
    "op",
    "cache",
    "snapshot_version",
)


def search_record(result: SearchResult, *, timestamp: float) -> dict:
    """One trace record (JSON-serialisable) for a finished search.

    The schema shared by :class:`TracingSearch` and the serving layer
    (:mod:`repro.service`), so traces from library calls and from the
    query engine can be analysed with the same tooling
    (:func:`read_trace`).  The key set is exactly :data:`TRACE_FIELDS`.
    """
    stats = result.stats
    return {
        "timestamp": float(timestamp),
        "epsilon": result.epsilon,
        "query_points": int(
            sum(segment.count for segment in result.query_partition)
        ),
        "query_segments": stats.query_segments,
        "candidates": len(result.candidates),
        "answers": len(result.answers),
        "interval_points": int(
            sum(len(i) for i in result.solution_intervals.values())
        ),
        "node_accesses": stats.node_accesses,
        "dnorm_evaluations": stats.dnorm_evaluations,
        "phase1_ms": stats.phase1_seconds * 1e3,
        "phase2_ms": stats.phase2_seconds * 1e3,
        "phase3_ms": stats.phase3_seconds * 1e3,
        "total_ms": stats.total_seconds * 1e3,
    }


class TracingSearch:
    """A :class:`SimilaritySearch` wrapper that logs every query.

    Parameters
    ----------
    engine:
        The engine to wrap.
    path:
        Trace file (JSON lines, appended).  ``None`` keeps records only in
        :attr:`records`.
    clock:
        Timestamp source (seconds); injectable for deterministic tests.
    """

    def __init__(
        self,
        engine: SimilaritySearch,
        path: str | Path | None = None,
        *,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if not isinstance(engine, SimilaritySearch):
            raise TypeError(
                f"expected a SimilaritySearch, got {type(engine).__name__}"
            )
        self.engine = engine
        self.path = None if path is None else Path(path)
        self.records: list[dict] = []
        self._clock = clock

    def search(
        self,
        query: MultidimensionalSequence,
        epsilon: float,
        **kwargs: Any,
    ) -> SearchResult:
        """Delegate to the wrapped engine and record the outcome."""
        epsilon = check_threshold(epsilon)
        result = self.engine.search(query, epsilon, **kwargs)
        record = self._record(result)
        self.records.append(record)
        if self.path is not None:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(record) + "\n")
        return result

    def __getattr__(self, name: str) -> Any:
        # Everything else (knn, explain, database, ...) passes through.
        return getattr(self.engine, name)

    def _record(self, result: SearchResult) -> dict:
        return search_record(result, timestamp=self._clock())


def read_trace(path: str | Path) -> list[dict]:
    """Load every record of a JSON-lines trace file."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: malformed trace line"
                ) from error
    return records
