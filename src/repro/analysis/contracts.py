"""Contract checking: the public surface and audit helpers.

The enforcement machinery lives in :mod:`repro.core.contracts` (it must be
importable from ``core`` without crossing layers); this module re-exports it
for users and adds analysis-level helpers that *actively* audit a database
rather than waiting for decorated calls to fire:

* :func:`lower_bound_chain` — compute all three levels of the hierarchy for
  one (query, sequence) pair and verify ``min Dmbr <= min Dnorm <= D``.
* :func:`audit_search` — run a query workload through a search engine with
  contract checking enabled, so every decorated call in the hot path is
  verified against independently recomputed bounds.

Enable checking globally with ``REPRO_CHECK_CONTRACTS=1`` or locally::

    from repro.analysis.contracts import checking_contracts

    with checking_contracts():
        engine.search(query, 0.1)   # validated, or ContractViolation
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.contracts import (
    BOUND_TOLERANCE,
    CONTRACTS_ENV_VAR,
    ContractViolation,
    checking_contracts,
    contracts_enabled,
    lower_bounds,
)
from repro.core.distance import min_normalized_distance, sequence_distance
from repro.util.validation import check_threshold

if TYPE_CHECKING:
    from repro.core.partitioning import PartitionedSequence
    from repro.core.search import SimilaritySearch
    from repro.core.sequence import MultidimensionalSequence

__all__ = [
    "BOUND_TOLERANCE",
    "BoundChain",
    "CONTRACTS_ENV_VAR",
    "ContractViolation",
    "audit_search",
    "checking_contracts",
    "contracts_enabled",
    "lower_bound_chain",
    "lower_bounds",
]


@dataclass(frozen=True)
class BoundChain:
    """The three levels of the paper's distance hierarchy for one pair."""

    min_dmbr: float
    min_dnorm: float
    exact_distance: float

    def holds(self, *, tolerance: float = BOUND_TOLERANCE) -> bool:
        """Whether ``min Dmbr <= min Dnorm <= D`` within ``tolerance``."""
        return (
            self.min_dmbr <= self.min_dnorm + tolerance
            and self.min_dnorm <= self.exact_distance + tolerance
        )


def lower_bound_chain(
    query_partition: PartitionedSequence,
    data_partition: PartitionedSequence,
    *,
    verify: bool = True,
) -> BoundChain:
    """Compute ``(min Dmbr, min Dnorm, D)`` for one pair of partitions.

    Parameters
    ----------
    query_partition, data_partition:
        The two partitioned sequences to compare.
    verify:
        When true (default), raise :class:`ContractViolation` if the chain
        is out of order — this check always runs, independent of the
        ``REPRO_CHECK_CONTRACTS`` toggle.
    """
    min_dmbr = min(
        float(data_partition.mbr_distance_row(segment.mbr).min())
        for segment in query_partition
    )
    min_dnorm = min_normalized_distance(query_partition, data_partition)
    exact = sequence_distance(
        query_partition.sequence, data_partition.sequence
    )
    chain = BoundChain(
        min_dmbr=min_dmbr, min_dnorm=min_dnorm, exact_distance=float(exact)
    )
    if verify and not chain.holds():
        raise ContractViolation(
            f"lower-bound chain out of order: Dmbr {min_dmbr!r}, "
            f"Dnorm {min_dnorm!r}, D {exact!r}"
        )
    return chain


def audit_search(
    engine: SimilaritySearch,
    queries: Iterable[MultidimensionalSequence],
    epsilon: float,
    *,
    find_intervals: bool = True,
) -> int:
    """Run a workload with contract checking on; return the search count.

    Every decorated call in the search path (``Dnorm`` windows, the
    end-to-end no-false-dismissal check, interval algebra) is validated for
    each query.  Raises :class:`ContractViolation` on the first broken
    bound; completing normally certifies the workload.
    """
    epsilon = check_threshold(epsilon)
    searches = 0
    with checking_contracts():
        for query in queries:
            engine.search(query, epsilon, find_intervals=find_intervals)
            searches += 1
    return searches
