"""Simulated paged storage with an LRU buffer pool.

The paper's cost model is disk-era: MCOST estimates the *number of disk
accesses* an MBR causes (§3.4.3), and the 2000 evaluation ran against a
disk-resident R-tree.  The in-memory trees here count logical node accesses;
this module adds the missing half — a page abstraction with a bounded LRU
buffer pool — so benchmarks can report *physical* I/O and validate the MCOST
model's assumptions at different buffer sizes.

Usage::

    store = PageStore(buffer_pages=64)
    attach_page_store(tree, store)      # every traversal now touches pages
    tree.search_within(probe, 0.1)
    store.stats.physical_reads          # simulated disk reads

One node maps to one page (the classic design point: node capacity is
chosen to fill a page).  The pool is warmed by accesses and evicts the
least-recently-used page when full.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.index.rtree import RTree
from repro.util.freeze import freeze_checks_enabled, verify_frozen

if TYPE_CHECKING:
    from repro.core.mbr import MBR
    from repro.index.node import LeafEntry, Node

__all__ = ["PageStats", "PageStore", "attach_page_store", "detach_page_store"]


@dataclass
class PageStats:
    """I/O counters of a :class:`PageStore`."""

    logical_reads: int = 0
    physical_reads: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Buffer hit rate over all logical reads (1.0 when never missed)."""
        if self.logical_reads == 0:
            return 1.0
        return 1.0 - self.physical_reads / self.logical_reads

    def reset(self) -> None:
        self.logical_reads = 0
        self.physical_reads = 0
        self.evictions = 0


class PageStore:
    """An LRU buffer pool over node-sized pages.

    Parameters
    ----------
    buffer_pages:
        Number of pages the pool holds; at least 1.
    """

    def __init__(self, buffer_pages: int = 64) -> None:
        if buffer_pages < 1:
            raise ValueError(f"buffer_pages must be >= 1, got {buffer_pages}")
        self.buffer_pages = buffer_pages
        self.stats = PageStats()
        self._pool: OrderedDict[int, None] = OrderedDict()

    def access(self, node: "Node") -> bool:
        """Record one access to ``node``'s page; returns ``True`` on a hit."""
        if freeze_checks_enabled() and getattr(node, "mbr", None) is not None:
            # A page served to a reader must carry a frozen rectangle: a
            # writable MBR here means some split/reinsert leaked a
            # mutable buffer into the shared tree.
            verify_frozen(
                node.mbr, role="index.page", site="PageStore.access"
            )
        page_id = id(node)
        self.stats.logical_reads += 1
        if page_id in self._pool:
            self._pool.move_to_end(page_id)
            return True
        self.stats.physical_reads += 1
        self._pool[page_id] = None
        if len(self._pool) > self.buffer_pages:
            self._pool.popitem(last=False)
            self.stats.evictions += 1
        return False

    def clear(self) -> None:
        """Drop every buffered page (cold restart); stats are kept."""
        self._pool.clear()

    @property
    def resident_pages(self) -> int:
        """Pages currently buffered."""
        return len(self._pool)


def attach_page_store(tree: RTree, store: PageStore) -> None:
    """Make every node access of ``tree`` pass through ``store``.

    Wraps the tree's traversal hook; reversible with
    :func:`detach_page_store`.
    """
    if getattr(tree, "_page_store", None) is not None:
        raise RuntimeError("tree already has a page store attached")
    tree._page_store = store
    original_traverse = tree._traverse

    def traversing(
        admits: "Callable[[MBR], bool]",
    ) -> "Iterator[LeafEntry]":
        # Re-yield while notifying the store of each node touched.  The
        # base traversal counts accesses in tree.stats; pages mirror it.
        def wrapped() -> "Iterator[LeafEntry]":
            if tree.root.mbr is None:
                return
            stack = [tree.root]
            while stack:
                node = stack.pop()
                tree.stats.node_accesses += 1
                store.access(node)
                if node.is_leaf:
                    tree.stats.leaf_accesses += 1
                    for entry in node.children:
                        if admits(entry.mbr):
                            yield entry
                else:
                    for child in node.children:
                        if admits(child.mbr):
                            stack.append(child)

        return wrapped()

    tree._traverse_without_paging = original_traverse
    tree._traverse = traversing


def detach_page_store(tree: RTree) -> None:
    """Undo :func:`attach_page_store`."""
    original = getattr(tree, "_traverse_without_paging", None)
    if original is None:
        raise RuntimeError("no page store attached to this tree")
    tree._traverse = original
    del tree._traverse_without_paging
    tree._page_store = None
