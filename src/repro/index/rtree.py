"""A Guttman R-tree (dynamic insertion, quadratic split).

The paper's index-construction step ("Every MBR is indexed and stored into a
database by using any R-tree variant", §3.4.1) needs a spatial index over the
segment MBRs that supports the Phase-2 query *find every leaf entry whose
``Dmbr`` to a query rectangle is at most ε*.  This module implements the
classic R-tree of Guttman (SIGMOD'84):

* **ChooseLeaf** descends towards the child needing the least volume
  enlargement (ties: smaller volume).
* **Quadratic split** seeds the two groups with the pair of children wasting
  the most volume if grouped, then assigns the rest by maximum preference
  difference.
* **AdjustTree** propagates MBR growth and splits towards the root.

Queries traverse with rectangle/rectangle ``min_distance`` (= ``Dmbr``)
pruning and count node accesses in :attr:`RTree.stats` so benchmarks can
report the cost-model quantity MCOST estimates.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.core.mbr import MBR
from repro.index.node import LeafEntry, Node
from repro.util.validation import check_threshold

if TYPE_CHECKING:
    import numpy.typing as npt

__all__ = ["IndexStats", "RTree"]


@dataclass
class IndexStats:
    """Mutable access counters a tree carries across operations."""

    node_accesses: int = 0
    leaf_accesses: int = 0
    splits: int = 0
    reinserts: int = 0

    def reset_query_counters(self) -> None:
        """Zero the per-query counters (accesses), keeping build counters."""
        self.node_accesses = 0
        self.leaf_accesses = 0


class RTree:
    """Dynamic R-tree over :class:`~repro.core.mbr.MBR` keyed leaf entries.

    Parameters
    ----------
    dimension:
        Dimensionality of the indexed rectangles.
    max_entries:
        Node capacity ``M`` (default 16).
    min_entries:
        Minimum fill ``m``; defaults to ``ceil(0.4 * M)`` as is conventional.

    Examples
    --------
    >>> tree = RTree(dimension=2)
    >>> tree.insert(MBR([0.1, 0.1], [0.2, 0.2]), payload="a")
    >>> [e.payload for e in tree.search_within(MBR([0.0, 0.0], [0.05, 0.05]), 0.2)]
    ['a']
    """

    def __init__(
        self,
        dimension: int,
        *,
        max_entries: int = 16,
        min_entries: int | None = None,
    ) -> None:
        if dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {dimension}")
        if max_entries < 2:
            raise ValueError(f"max_entries must be >= 2, got {max_entries}")
        if min_entries is None:
            min_entries = max(1, (2 * max_entries + 4) // 5)  # ceil(0.4 M)
        if not 1 <= min_entries <= max_entries // 2:
            raise ValueError(
                f"min_entries must be in [1, max_entries // 2]; got "
                f"{min_entries} for max_entries={max_entries}"
            )
        self.dimension = dimension
        self.max_entries = max_entries
        self.min_entries = min_entries
        self.root = Node(is_leaf=True, level=0)
        self.stats = IndexStats()
        self._size = 0

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (1 for a tree that is just a root leaf)."""
        return self.root.level + 1

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(dimension={self.dimension}, "
            f"size={self._size}, height={self.height})"
        )

    # ------------------------------------------------------------------
    # Structural copy (snapshot support)
    # ------------------------------------------------------------------
    def _empty_clone(self) -> "RTree":
        """A fresh tree of the same kind and parameters, no contents."""
        return type(self)(
            self.dimension,
            max_entries=self.max_entries,
            min_entries=self.min_entries,
        )

    def clone(self) -> "RTree":
        """A structurally identical copy sharing no mutable node state.

        Node objects are duplicated; the immutable building blocks
        (:class:`~repro.core.mbr.MBR`, :class:`LeafEntry`, payloads) are
        shared, so cloning costs one object per node/entry rather than a
        full rebuild.  Inserts and deletes on either tree never affect the
        other — the copy-on-write primitive behind
        :meth:`repro.core.database.SequenceDatabase.clone`.  The clone
        starts with fresh (zeroed) :attr:`stats`.
        """
        twin = self._empty_clone()
        twin.root = self._clone_node(self.root)
        twin._size = self._size
        return twin

    @classmethod
    def _clone_node(cls, node: Node) -> Node:
        copy = Node(is_leaf=node.is_leaf, level=node.level)
        copy.mbr = node.mbr
        if node.is_leaf:
            copy.children = list(node.children)
        else:
            copy.children = [cls._clone_node(child) for child in node.children]
        return copy

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, mbr: MBR, payload: Any = None) -> None:
        """Insert one leaf entry."""
        if mbr.dimension != self.dimension:
            raise ValueError(
                f"entry dimension {mbr.dimension} != index dimension "
                f"{self.dimension}"
            )
        self._insert_entry(LeafEntry(mbr, payload), target_level=0)
        self._size += 1

    def extend(self, items: Iterable[tuple[MBR, Any]]) -> None:
        """Insert ``(mbr, payload)`` pairs from an iterable."""
        for mbr, payload in items:
            self.insert(mbr, payload)

    def _insert_entry(
        self, item: LeafEntry | Node, target_level: int
    ) -> None:
        """Insert an entry (level 0) or an orphaned subtree at its level."""
        split = self._insert_recursive(self.root, item, target_level)
        if split is not None:
            new_root = Node(is_leaf=False, level=self.root.level + 1)
            new_root.add(self.root)
            new_root.add(split)
            self.root = new_root

    def _insert_recursive(
        self, node: Node, item: LeafEntry | Node, target_level: int
    ) -> Node | None:
        """Descend to ``target_level``, insert, split upwards as needed.

        Returns the sibling created by a split of ``node``, or ``None``.
        """
        if node.level == target_level:
            node.add(item)
        else:
            child = self._choose_subtree(node, item.mbr)
            split_child = self._insert_recursive(child, item, target_level)
            node.recompute_mbr()
            if split_child is not None:
                node.add(split_child)
        if len(node.children) > self.max_entries:
            return self._handle_overflow(node)
        return None

    def _handle_overflow(self, node: Node) -> Node | None:
        """Resolve an overfull node; the base tree always splits.

        Subclasses may instead shed entries for reinsertion (R*-tree) and
        return ``None``.
        """
        return self._split(node)

    # ------------------------------------------------------------------
    # Deletion (Guttman's Delete / CondenseTree)
    # ------------------------------------------------------------------
    def delete(self, mbr: MBR, payload: Any = None) -> bool:
        """Remove one leaf entry matching ``(mbr, payload)`` exactly.

        Returns ``True`` when an entry was found and removed.  Underfull
        nodes on the path are dissolved and their contents reinserted
        (Guttman's CondenseTree), so the occupancy invariants survive.
        """
        if mbr.dimension != self.dimension:
            raise ValueError(
                f"entry dimension {mbr.dimension} != index dimension "
                f"{self.dimension}"
            )
        path = self._find_leaf_path(self.root, mbr, payload)
        if path is None:
            return False
        leaf = path[-1]
        for index, entry in enumerate(leaf.children):
            if entry.mbr == mbr and entry.payload == payload:
                del leaf.children[index]
                break
        self._condense_tree(path)
        self._size -= 1
        # Shrink the root: an internal root with one child is redundant.
        while not self.root.is_leaf and len(self.root.children) == 1:
            self.root = self.root.children[0]
        self.root.recompute_mbr()
        return True

    def _find_leaf_path(
        self, node: Node, mbr: MBR, payload: Any
    ) -> list[Node] | None:
        """Root-to-leaf path of the node holding the entry, or ``None``."""
        if node.mbr is None or not node.mbr.contains(mbr):
            return None
        if node.is_leaf:
            for entry in node.children:
                if entry.mbr == mbr and entry.payload == payload:
                    return [node]
            return None
        for child in node.children:
            found = self._find_leaf_path(child, mbr, payload)
            if found is not None:
                return [node, *found]
        return None

    def _condense_tree(self, path: list[Node]) -> None:
        """Dissolve underfull nodes bottom-up and reinsert their contents."""
        orphans: list[tuple[LeafEntry | Node, int]] = []
        for depth in range(len(path) - 1, 0, -1):
            node = path[depth]
            parent = path[depth - 1]
            if len(node.children) < self.min_entries:
                parent.children.remove(node)
                # Children were hosted at this node's level: leaf entries go
                # back into a level-0 node, subtrees into a node at the
                # dissolved node's own level.
                orphans.extend((child, node.level) for child in node.children)
            else:
                node.recompute_mbr()
        path[0].recompute_mbr()
        for item, level in orphans:
            # A dissolved subtree may sit above the current root after
            # cascading shrinks; reinsert its leaf entries instead.
            if level > 0 and level >= self.root.level:
                for entry in self._collect_entries(item):
                    self._insert_entry(entry, target_level=0)
            else:
                self._insert_entry(item, target_level=level)

    @staticmethod
    def _collect_entries(item: LeafEntry | Node) -> list[LeafEntry]:
        if isinstance(item, LeafEntry):
            return [item]
        entries: list[LeafEntry] = []
        stack = [item]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                entries.extend(node.children)
            else:
                stack.extend(node.children)
        return entries

    def _choose_subtree(self, node: Node, mbr: MBR) -> Node:
        """Guttman's ChooseLeaf step: least enlargement, ties by volume."""
        best = None
        best_key = None
        for child in node.children:
            key = (child.mbr.enlargement(mbr), child.mbr.volume())
            if best_key is None or key < best_key:
                best = child
                best_key = key
        return best

    # ------------------------------------------------------------------
    # Quadratic split
    # ------------------------------------------------------------------
    def _split(self, node: Node) -> Node:
        """Split an overfull node in place; return the new sibling."""
        self.stats.splits += 1
        children = node.children
        seed_a, seed_b = self._pick_seeds(children)
        group_a = [children[seed_a]]
        group_b = [children[seed_b]]
        mbr_a = children[seed_a].mbr
        mbr_b = children[seed_b].mbr
        remaining = [
            child
            for index, child in enumerate(children)
            if index not in (seed_a, seed_b)
        ]

        while remaining:
            # If one group must absorb everything to reach min fill, do so.
            need_a = self.min_entries - len(group_a)
            need_b = self.min_entries - len(group_b)
            if need_a >= len(remaining):
                group_a.extend(remaining)
                mbr_a = MBR.union_all([mbr_a] + [c.mbr for c in remaining])
                remaining = []
                break
            if need_b >= len(remaining):
                group_b.extend(remaining)
                mbr_b = MBR.union_all([mbr_b] + [c.mbr for c in remaining])
                remaining = []
                break
            chosen_index, prefer_a = self._pick_next(remaining, mbr_a, mbr_b)
            chosen = remaining.pop(chosen_index)
            if prefer_a:
                group_a.append(chosen)
                mbr_a = mbr_a.union(chosen.mbr)
            else:
                group_b.append(chosen)
                mbr_b = mbr_b.union(chosen.mbr)

        node.children = group_a
        node.mbr = mbr_a
        sibling = Node(is_leaf=node.is_leaf, level=node.level)
        sibling.children = group_b
        sibling.mbr = mbr_b
        return sibling

    @staticmethod
    def _pick_seeds(children: list[LeafEntry] | list[Node]) -> tuple[int, int]:
        """The pair wasting the most volume if grouped together."""
        best_pair = (0, 1)
        best_waste = float("-inf")
        for (i, a), (j, b) in itertools.combinations(enumerate(children), 2):
            waste = (
                a.mbr.union(b.mbr).volume() - a.mbr.volume() - b.mbr.volume()
            )
            if waste > best_waste:
                best_waste = waste
                best_pair = (i, j)
        return best_pair

    def _pick_next(
        self,
        remaining: list[LeafEntry] | list[Node],
        mbr_a: MBR,
        mbr_b: MBR,
    ) -> tuple[int, bool]:
        """The child with the strongest group preference, and that group."""
        best_index = 0
        best_diff = -1.0
        best_prefer_a = True
        for index, child in enumerate(remaining):
            enlarge_a = mbr_a.enlargement(child.mbr)
            enlarge_b = mbr_b.enlargement(child.mbr)
            diff = abs(enlarge_a - enlarge_b)
            if diff > best_diff:
                best_diff = diff
                best_index = index
                if enlarge_a != enlarge_b:
                    best_prefer_a = enlarge_a < enlarge_b
                else:
                    best_prefer_a = mbr_a.volume() <= mbr_b.volume()
        return best_index, best_prefer_a

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def search_intersect(self, query: MBR) -> list[LeafEntry]:
        """All leaf entries whose MBR intersects ``query``."""
        self._check_query(query)
        return [
            entry
            for entry in self._traverse(
                lambda mbr: mbr.intersects(query)
            )
        ]

    def search_within(self, query: MBR, epsilon: float) -> list[LeafEntry]:
        """All leaf entries with ``Dmbr(entry, query) <= epsilon``.

        This is the Phase-2 index probe of the paper's SIMILARITY_SEARCH:
        rectangle-to-rectangle minimum distance at most the threshold.
        """
        self._check_query(query)
        epsilon = check_threshold(epsilon)
        return list(
            self._traverse(lambda mbr: mbr.min_distance(query) <= epsilon)
        )

    def search_point_radius(
        self, point: "npt.ArrayLike", epsilon: float
    ) -> list[LeafEntry]:
        """All leaf entries within Euclidean distance ``epsilon`` of a point."""
        epsilon = check_threshold(epsilon)
        query = MBR.of_point(point)
        return self.search_within(query, epsilon)

    def _traverse(self, admits: Callable[[MBR], bool]) -> Iterator[LeafEntry]:
        """Depth-first traversal pruned by an MBR predicate, counting accesses."""
        if self.root.mbr is None:
            return
        stack = [self.root]
        while stack:
            node = stack.pop()
            self.stats.node_accesses += 1
            if node.is_leaf:
                self.stats.leaf_accesses += 1
                for entry in node.children:
                    if admits(entry.mbr):
                        yield entry
            else:
                for child in node.children:
                    if admits(child.mbr):
                        stack.append(child)

    def nearest(self, query: MBR, k: int = 1) -> list[tuple[float, LeafEntry]]:
        """The ``k`` leaf entries with smallest ``Dmbr`` to ``query``.

        Best-first (Hjaltason/Samet) traversal ordered by rectangle
        ``min_distance``; an extension beyond the paper used by the k-NN
        sequence search in :mod:`repro.core.search`.

        Returns
        -------
        list of (distance, entry)
            In non-decreasing distance order.
        """
        self._check_query(query)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if self.root.mbr is None:
            return []
        results: list[tuple[float, LeafEntry]] = []
        counter = itertools.count()  # tie-breaker: heap items never compare nodes
        heap = [(self.root.mbr.min_distance(query), next(counter), self.root)]
        while heap and len(results) < k:
            distance, _, item = heapq.heappop(heap)
            if isinstance(item, LeafEntry):
                results.append((distance, item))
                continue
            self.stats.node_accesses += 1
            if item.is_leaf:
                self.stats.leaf_accesses += 1
            for child in item.children:
                heapq.heappush(
                    heap,
                    (child.mbr.min_distance(query), next(counter), child),
                )
        return results

    # ------------------------------------------------------------------
    # Introspection / invariants
    # ------------------------------------------------------------------
    def entries(self) -> Iterator[LeafEntry]:
        """Iterate over every leaf entry (no access counting)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.children
            else:
                stack.extend(node.children)

    def check_invariants(self, *, check_min_fill: bool = True) -> None:
        """Verify structural invariants; raises ``RuntimeError`` on damage.

        Checked: cached MBRs match contents, every child MBR is contained in
        its parent, all leaves sit at level 0, node occupancy respects
        ``max_entries`` (and, when ``check_min_fill``, ``min_entries`` for
        non-roots — bulk-loaded trees may underfill their last page), and
        the leaf count matches ``len(self)``.
        """

        def broken(detail: str) -> RuntimeError:
            return RuntimeError(f"R-tree invariant broken: {detail}")

        count = 0
        stack: list[tuple[Node, MBR | None]] = [(self.root, None)]
        while stack:
            node, parent_mbr = stack.pop()
            if node.children:
                recomputed = MBR.union_all(c.mbr for c in node.children)
                if node.mbr != recomputed:
                    raise broken(
                        f"stale cached MBR {node.mbr} != {recomputed}"
                    )
            elif node is not self.root:
                raise broken("empty non-root node")
            if parent_mbr is not None:
                if node.mbr is not None and not parent_mbr.contains(node.mbr):
                    raise broken("child escapes parent MBR")
                lower = self.min_entries if check_min_fill else 1
                if not lower <= len(node.children) <= self.max_entries:
                    raise broken(
                        f"occupancy {len(node.children)} outside "
                        f"[{lower}, {self.max_entries}]"
                    )
            elif len(node.children) > self.max_entries:
                raise broken(
                    f"root occupancy {len(node.children)} exceeds "
                    f"{self.max_entries}"
                )
            if node.is_leaf:
                if node.level != 0:
                    raise broken(f"leaf at level {node.level}, expected 0")
                count += len(node.children)
            else:
                for child in node.children:
                    if child.level != node.level - 1:
                        raise broken(
                            f"child level {child.level} under level "
                            f"{node.level}"
                        )
                    stack.append((child, node.mbr))
        if count != self._size:
            raise broken(f"size {self._size} != leaf count {count}")

    def _check_query(self, query: MBR) -> None:
        if not isinstance(query, MBR):
            raise TypeError(f"query must be an MBR, got {type(query).__name__}")
        if query.dimension != self.dimension:
            raise ValueError(
                f"query dimension {query.dimension} != index dimension "
                f"{self.dimension}"
            )
