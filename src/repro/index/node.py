"""Node and entry structures shared by the R-tree family.

The trees are in-memory: a :class:`Node` is either a *leaf* holding
:class:`LeafEntry` records (an MBR plus an opaque payload) or an *internal*
node holding child nodes.  Every node caches the MBR of its contents; the
trees keep the caches consistent on insert/split, and
:meth:`Node.recompute_mbr` rebuilds one level on demand.

The paper stores one leaf entry per sequence segment: the segment MBR plus a
payload identifying ``(sequence id, segment index)`` — see
:mod:`repro.core.database`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.mbr import MBR

__all__ = ["LeafEntry", "Node"]


@dataclass(frozen=True)
class LeafEntry:
    """A leaf record: a bounding rectangle and the object it indexes."""

    mbr: MBR
    payload: Any


class Node:
    """One R-tree node (leaf or internal)."""

    __slots__ = ("is_leaf", "children", "mbr", "level")

    def __init__(self, is_leaf: bool, level: int = 0) -> None:
        #: Whether children are :class:`LeafEntry` records (leaf) or nodes.
        self.is_leaf = is_leaf
        #: Leaf entries or child nodes, depending on :attr:`is_leaf`.
        self.children: list = []
        #: Cached MBR of the contents; ``None`` while empty.
        self.mbr: MBR | None = None
        #: Height of this node above the leaves (leaves are level 0).
        self.level = level

    def __len__(self) -> int:
        return len(self.children)

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "internal"
        return f"Node({kind}, level={self.level}, children={len(self.children)})"

    def child_mbr(self, index: int) -> MBR:
        """The MBR of child ``index`` (entry MBR or child-node MBR)."""
        child = self.children[index]
        return child.mbr

    def add(self, child: "LeafEntry | Node") -> None:
        """Append a child (entry or node) and grow the cached MBR."""
        self.children.append(child)
        if self.mbr is None:
            self.mbr = child.mbr
        else:
            self.mbr = self.mbr.union(child.mbr)

    def recompute_mbr(self) -> None:
        """Rebuild the cached MBR from the children (after removals/splits)."""
        if not self.children:
            self.mbr = None
        else:
            self.mbr = MBR.union_all(child.mbr for child in self.children)
