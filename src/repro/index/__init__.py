"""Spatial index substrate: the R-tree family used to store segment MBRs.

The paper stores every sequence-segment MBR "into a database by using the
R-tree or its variants" (§3.4.1).  This subpackage provides:

* :class:`~repro.index.rtree.RTree` — the classic Guttman tree
  (quadratic split), the default index.
* :class:`~repro.index.rstar.RStarTree` — the R*-tree variant.
* :func:`~repro.index.bulk.bulk_load_str` — STR-packed bulk construction
  for offline index building.

All trees support the Phase-2 probe of the paper's search algorithm:
``search_within(query_mbr, epsilon)`` returns every leaf entry whose
rectangle-to-rectangle minimum distance (``Dmbr``) to the query rectangle is
at most ``epsilon``.
"""

from repro.core.backends import register_index_backend
from repro.index.bulk import bulk_load_str
from repro.index.node import LeafEntry, Node
from repro.index.paging import (
    PageStats,
    PageStore,
    attach_page_store,
    detach_page_store,
)
from repro.index.rstar import RStarTree
from repro.index.serialize import load_tree, save_tree
from repro.index.rtree import IndexStats, RTree

# Self-register the default backends with the core registry (the lazy
# provider seam of repro.core.backends imports this module by name).
register_index_backend(
    "rtree",
    factory=lambda dimension, max_entries: RTree(
        dimension, max_entries=max_entries
    ),
)
register_index_backend(
    "rstar",
    factory=lambda dimension, max_entries: RStarTree(
        dimension, max_entries=max_entries
    ),
)
register_index_backend(
    "str",
    bulk_factory=lambda items, dimension, max_entries: bulk_load_str(
        items, dimension, max_entries=max_entries
    ),
    incremental=False,
)

__all__ = [
    "IndexStats",
    "LeafEntry",
    "Node",
    "PageStats",
    "PageStore",
    "RStarTree",
    "RTree",
    "attach_page_store",
    "bulk_load_str",
    "detach_page_store",
    "load_tree",
    "save_tree",
]
