"""Spatial index substrate: the R-tree family used to store segment MBRs.

The paper stores every sequence-segment MBR "into a database by using the
R-tree or its variants" (§3.4.1).  This subpackage provides:

* :class:`~repro.index.rtree.RTree` — the classic Guttman tree
  (quadratic split), the default index.
* :class:`~repro.index.rstar.RStarTree` — the R*-tree variant.
* :func:`~repro.index.bulk.bulk_load_str` — STR-packed bulk construction
  for offline index building.

All trees support the Phase-2 probe of the paper's search algorithm:
``search_within(query_mbr, epsilon)`` returns every leaf entry whose
rectangle-to-rectangle minimum distance (``Dmbr``) to the query rectangle is
at most ``epsilon``.
"""

from repro.core.backends import register_index_backend
from repro.index.bulk import bulk_load_str
from repro.index.node import LeafEntry, Node
from repro.index.paging import (
    PageStats,
    PageStore,
    attach_page_store,
    detach_page_store,
)
from repro.index.rstar import RStarTree
from repro.index.serialize import dumps_tree, load_tree, loads_tree, save_tree
from repro.index.rtree import IndexStats, RTree

def _dumps_backend(index: object) -> bytes:
    """Registry ``dumps`` hook: flat-serialise any tree of this family."""
    if not isinstance(index, RTree):
        raise TypeError(
            f"cannot flat-serialise {type(index).__name__}; expected an "
            f"RTree-family index"
        )
    return dumps_tree(index)


# Self-register the default backends with the core registry (the lazy
# provider seam of repro.core.backends imports this module by name).
# All three kinds build RTree-family trees, so they share the flat
# dumps/loads pair of repro.index.serialize.
register_index_backend(
    "rtree",
    factory=lambda dimension, max_entries: RTree(
        dimension, max_entries=max_entries
    ),
    dumps=_dumps_backend,
    loads=loads_tree,
)
register_index_backend(
    "rstar",
    factory=lambda dimension, max_entries: RStarTree(
        dimension, max_entries=max_entries
    ),
    dumps=_dumps_backend,
    loads=loads_tree,
)
register_index_backend(
    "str",
    bulk_factory=lambda items, dimension, max_entries: bulk_load_str(
        items, dimension, max_entries=max_entries
    ),
    incremental=False,
    dumps=_dumps_backend,
    loads=loads_tree,
)

__all__ = [
    "IndexStats",
    "LeafEntry",
    "Node",
    "PageStats",
    "PageStore",
    "RStarTree",
    "RTree",
    "attach_page_store",
    "bulk_load_str",
    "detach_page_store",
    "dumps_tree",
    "load_tree",
    "loads_tree",
    "save_tree",
]
