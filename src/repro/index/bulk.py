"""Sort-Tile-Recursive (STR) bulk loading (Leutenegger et al., ICDE'97).

Index construction in the paper is an offline pre-processing step
(§3.4.1): every sequence is partitioned and all segment MBRs are inserted at
once.  Bulk loading builds a far better-packed tree than one-at-a-time
insertion for that workload, so the database offers it as an option and the
``bench_ablation_index`` benchmark compares the variants.

STR sorts the rectangles by the first coordinate of their centres, cuts the
sorted list into vertical slabs, recursively tiles each slab on the next
coordinate, and packs consecutive runs of ``max_entries`` rectangles into
leaves; the same packing is applied level by level until one root remains.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

import numpy as np

from repro.core.mbr import MBR
from repro.index.node import LeafEntry, Node
from repro.index.rtree import RTree

__all__ = ["bulk_load_str"]


def bulk_load_str(
    items: Iterable[tuple[MBR, Any]],
    dimension: int,
    *,
    max_entries: int = 16,
    min_entries: int | None = None,
) -> RTree:
    """Build a packed R-tree from ``(mbr, payload)`` pairs via STR.

    Parameters
    ----------
    items:
        The leaf entries to index.
    dimension:
        Dimensionality of the rectangles.
    max_entries, min_entries:
        Node capacity parameters of the resulting tree.  Subsequent dynamic
        ``insert`` calls keep working; only the initial packing differs.

    Returns
    -------
    RTree
        A tree containing exactly the given entries.
    """
    tree = RTree(dimension, max_entries=max_entries, min_entries=min_entries)
    entries = [LeafEntry(mbr, payload) for mbr, payload in items]
    for entry in entries:
        if entry.mbr.dimension != dimension:
            raise ValueError(
                f"entry dimension {entry.mbr.dimension} != index dimension "
                f"{dimension}"
            )
    if not entries:
        return tree

    leaves = [
        _make_node(chunk, is_leaf=True, level=0)
        for chunk in _str_tile(entries, dimension, max_entries)
    ]
    level = 0
    nodes = leaves
    while len(nodes) > 1:
        level += 1
        nodes = [
            _make_node(chunk, is_leaf=False, level=level)
            for chunk in _str_tile(nodes, dimension, max_entries)
        ]
    tree.root = nodes[0]
    tree._size = len(entries)
    return tree


def _make_node(children: list, *, is_leaf: bool, level: int) -> Node:
    node = Node(is_leaf=is_leaf, level=level)
    node.children = list(children)
    node.recompute_mbr()
    return node


def _str_tile(items: list, dimension: int, capacity: int) -> list[list]:
    """Partition items into runs of ``capacity`` by recursive centre sorting."""
    if len(items) <= capacity:
        return [list(items)]
    return _tile_axis(items, axis=0, dimension=dimension, capacity=capacity)


def _tile_axis(items: list, axis: int, dimension: int, capacity: int) -> list[list]:
    count = len(items)
    pages = math.ceil(count / capacity)
    if axis >= dimension - 1 or pages == 1:
        ordered = _sorted_by_center(items, axis)
        return [
            ordered[start : start + capacity]
            for start in range(0, count, capacity)
        ]
    # Number of slabs along this axis: ceil(pages ** (1 / remaining_axes)).
    remaining_axes = dimension - axis
    slabs = max(1, math.ceil(pages ** (1.0 / remaining_axes)))
    slab_size = math.ceil(count / slabs)
    ordered = _sorted_by_center(items, axis)
    chunks: list[list] = []
    for start in range(0, count, slab_size):
        slab = ordered[start : start + slab_size]
        chunks.extend(
            _tile_axis(slab, axis + 1, dimension, capacity)
        )
    return chunks


def _sorted_by_center(items: list, axis: int) -> list:
    centers = np.array([item.mbr.center[axis] for item in items])
    return [items[i] for i in np.argsort(centers, kind="stable")]
