"""Flat serialisation of R-trees to ``.npz`` archives.

:meth:`repro.core.database.SequenceDatabase.save` rebuilds its index from
the raw sequences on load, which is simple but pays the full construction
cost again.  For large corpora this module persists the *tree structure
itself*: nodes are flattened breadth-first into parallel arrays (level,
kind, child ranges) with the rectangle coordinates in one matrix, and leaf
payloads pickled alongside.

Round-tripping preserves node layout exactly, so query results *and*
node-access counts are identical before and after.

Security note: the payload column is pickled (payloads are Python objects,
e.g. :class:`~repro.core.database.SegmentKey`), and ``pickle.loads`` on
untrusted bytes is arbitrary code execution.  Loading therefore goes
through a restricted :class:`pickle.Unpickler` whose ``find_class`` admits
only :class:`~repro.core.database.SegmentKey` plus stdlib/numpy primitive
constructors (:data:`SAFE_PICKLE_GLOBALS`); any other global — including
``os.system``, ``subprocess`` helpers or ``__reduce__`` gadgets — raises
``pickle.UnpicklingError`` before it is resolved.  Archives holding exotic
payload types are *not* loadable by design; extend
:data:`SAFE_PICKLE_GLOBALS` deliberately if you add one.
"""

from __future__ import annotations

import io
import pickle
from typing import TYPE_CHECKING

import numpy as np

from repro.core.mbr import MBR
from repro.index.node import LeafEntry, Node
from repro.index.rstar import RStarTree
from repro.index.rtree import RTree
from repro.util.freeze import freeze, freeze_checks_enabled, verify_frozen

if TYPE_CHECKING:
    import os
    from typing import IO

    TreeSink = "str | os.PathLike[str] | IO[bytes]"

__all__ = [
    "SAFE_PICKLE_GLOBALS",
    "dumps_tree",
    "load_tree",
    "loads_tree",
    "save_tree",
]

_KINDS = {"RTree": RTree, "RStarTree": RStarTree}

#: ``(module, qualname)`` pairs the payload unpickler may resolve.  The
#: leaf payloads the library itself writes are ``SegmentKey`` instances
#: whose fields are ``str``/``int``, so this list is deliberately tiny;
#: the numpy entries cover payloads that captured numpy scalars.
SAFE_PICKLE_GLOBALS: frozenset[tuple[str, str]] = frozenset(
    {
        ("repro.core.database", "SegmentKey"),
        ("builtins", "bool"),
        ("builtins", "bytes"),
        ("builtins", "complex"),
        ("builtins", "dict"),
        ("builtins", "float"),
        ("builtins", "frozenset"),
        ("builtins", "int"),
        ("builtins", "list"),
        ("builtins", "set"),
        ("builtins", "str"),
        ("builtins", "tuple"),
        ("numpy", "dtype"),
        ("numpy", "ndarray"),
        ("numpy.core.multiarray", "_reconstruct"),
        ("numpy.core.multiarray", "scalar"),
        ("numpy._core.multiarray", "_reconstruct"),
        ("numpy._core.multiarray", "scalar"),
    }
)


class _RestrictedUnpickler(pickle.Unpickler):
    """An unpickler that only resolves :data:`SAFE_PICKLE_GLOBALS`."""

    def find_class(self, module: str, name: str) -> object:
        if (module, name) in SAFE_PICKLE_GLOBALS:
            return super().find_class(module, name)
        raise pickle.UnpicklingError(
            f"payload pickle references forbidden global {module}.{name}; "
            f"only SegmentKey and stdlib/numpy primitives are loadable"
        )


def _restricted_loads(data: bytes) -> list:
    """Unpickle the payload column through the restricted unpickler."""
    payloads = _RestrictedUnpickler(io.BytesIO(data)).load()
    if not isinstance(payloads, list):
        raise pickle.UnpicklingError(
            f"payload column must unpickle to a list, got "
            f"{type(payloads).__name__}"
        )
    return payloads


def save_tree(tree: RTree, path: TreeSink) -> None:
    """Serialise a (non-empty or empty) R-tree to ``path`` (.npz)."""
    if type(tree).__name__ not in _KINDS:
        raise TypeError(
            f"cannot serialise {type(tree).__name__}; expected one of "
            f"{sorted(_KINDS)}"
        )

    # Breadth-first flattening: children of node i occupy a contiguous run.
    nodes: list[Node] = [tree.root]
    for node in nodes:  # grows while iterating: BFS
        if not node.is_leaf:
            nodes.extend(node.children)

    node_count = len(nodes)
    index_of = {id(node): position for position, node in enumerate(nodes)}
    levels = np.empty(node_count, dtype=np.int64)
    is_leaf = np.empty(node_count, dtype=np.bool_)
    child_start = np.zeros(node_count, dtype=np.int64)
    child_count = np.zeros(node_count, dtype=np.int64)
    first_child = np.full(node_count, -1, dtype=np.int64)

    entry_lows: list[np.ndarray] = []
    entry_highs: list[np.ndarray] = []
    payloads: list = []

    for position, node in enumerate(nodes):
        levels[position] = node.level
        is_leaf[position] = node.is_leaf
        child_count[position] = len(node.children)
        if node.is_leaf:
            child_start[position] = len(payloads)
            for entry in node.children:
                entry_lows.append(entry.mbr.low)
                entry_highs.append(entry.mbr.high)
                payloads.append(entry.payload)
        elif node.children:
            first_child[position] = index_of[id(node.children[0])]

    entry_count = len(payloads)
    dimension = tree.dimension
    lows = (
        np.vstack(entry_lows) if entry_lows else np.empty((0, dimension))
    )
    highs = (
        np.vstack(entry_highs) if entry_highs else np.empty((0, dimension))
    )

    np.savez_compressed(
        path,
        kind=np.frombuffer(type(tree).__name__.encode(), dtype=np.uint8),
        dimension=np.int64(dimension),
        max_entries=np.int64(tree.max_entries),
        min_entries=np.int64(tree.min_entries),
        size=np.int64(len(tree)),
        levels=levels,
        is_leaf=is_leaf,
        child_start=child_start,
        child_count=child_count,
        first_child=first_child,
        entry_lows=lows,
        entry_highs=highs,
        payloads=np.frombuffer(
            pickle.dumps(payloads, protocol=pickle.HIGHEST_PROTOCOL),
            dtype=np.uint8,
        ),
        entry_count=np.int64(entry_count),
    )


def load_tree(path: TreeSink) -> RTree:
    """Rebuild a tree saved with :func:`save_tree` (identical layout)."""
    with np.load(path) as archive:
        kind = bytes(archive["kind"]).decode()
        cls = _KINDS.get(kind)
        if cls is None:
            raise ValueError(f"unknown tree kind {kind!r} in archive")
        dimension = int(archive["dimension"])
        tree = cls(
            dimension,
            max_entries=int(archive["max_entries"]),
            min_entries=int(archive["min_entries"]),
        )
        levels = archive["levels"]
        is_leaf = archive["is_leaf"]
        child_start = archive["child_start"]
        child_count = archive["child_count"]
        first_child = archive["first_child"]
        # Frozen so nothing rebuilt below can alias a writable buffer:
        # MBR copies its inputs, but the flag makes any future by-
        # reference refactor fail loudly instead of sharing mutable state.
        lows = freeze(archive["entry_lows"])
        highs = freeze(archive["entry_highs"])
        payloads = _restricted_loads(bytes(archive["payloads"]))

        nodes = [
            Node(is_leaf=bool(is_leaf[i]), level=int(levels[i]))
            for i in range(levels.shape[0])
        ]
        for position, node in enumerate(nodes):
            count = int(child_count[position])
            if node.is_leaf:
                start = int(child_start[position])
                node.children = [
                    LeafEntry(
                        MBR(lows[start + offset], highs[start + offset]),
                        payloads[start + offset],
                    )
                    for offset in range(count)
                ]
            elif count:
                begin = int(first_child[position])
                node.children = nodes[begin : begin + count]
        # MBRs are derived state: rebuild bottom-up (leaves first) so every
        # parent sees finished child rectangles.
        for node in sorted(nodes, key=lambda n: n.level):
            node.recompute_mbr()

        tree.root = nodes[0] if nodes else Node(is_leaf=True, level=0)
        tree._size = int(archive["size"])
        if freeze_checks_enabled():
            verify_frozen(tree, role="index.load", site="load_tree")
        return tree


def dumps_tree(tree: RTree) -> bytes:
    """:func:`save_tree` into bytes (for embedding in other archives)."""
    buffer = io.BytesIO()
    save_tree(tree, buffer)
    return buffer.getvalue()


def loads_tree(data: bytes) -> RTree:
    """Inverse of :func:`dumps_tree`."""
    return load_tree(io.BytesIO(data))
