"""The R*-tree variant (Beckmann et al., SIGMOD'90).

The paper's index-construction step allows "the R-tree or its variants
[2, 3, 4, 9]"; the R*-tree is the variant that mattered in practice.  It
differs from the Guttman tree in three ways, all implemented here:

* **ChooseSubtree**: at the level just above the leaves the child is picked
  by least *overlap* enlargement (ties: least volume enlargement, then least
  volume); higher up, by least volume enlargement as before.
* **Split**: the split axis minimises the sum of group margins over all
  legal distributions; the distribution on that axis minimises group
  overlap (ties: total volume).
* **Forced reinsert**: the first time a node overflows at each level during
  one insertion, the 30% of its children farthest from its centre are
  removed and reinserted instead of splitting, which tightens the tree.
"""

from __future__ import annotations

import numpy as np

from repro.core.mbr import MBR
from repro.index.node import LeafEntry, Node
from repro.index.rtree import RTree
from repro.util.freeze import freeze_checks_enabled, verify_frozen

__all__ = ["RStarTree"]


class RStarTree(RTree):
    """R*-tree: overlap-aware subtree choice, margin split, forced reinsert.

    Parameters
    ----------
    dimension, max_entries, min_entries:
        As for :class:`~repro.index.rtree.RTree`.
    reinsert_fraction:
        Fraction of an overfull node's children removed for reinsertion
        (the classic value is 0.3).
    """

    def __init__(
        self,
        dimension: int,
        *,
        max_entries: int = 16,
        min_entries: int | None = None,
        reinsert_fraction: float = 0.3,
    ) -> None:
        super().__init__(
            dimension, max_entries=max_entries, min_entries=min_entries
        )
        if not 0.0 < reinsert_fraction < 1.0:
            raise ValueError(
                f"reinsert_fraction must be in (0, 1), got {reinsert_fraction}"
            )
        self.reinsert_fraction = reinsert_fraction
        self._levels_reinserted: set[int] = set()
        self._pending: list[tuple[object, int]] = []

    def _empty_clone(self) -> "RStarTree":
        return type(self)(
            self.dimension,
            max_entries=self.max_entries,
            min_entries=self.min_entries,
            reinsert_fraction=self.reinsert_fraction,
        )

    # ------------------------------------------------------------------
    # Insertion driver with deferred reinsertion
    # ------------------------------------------------------------------
    def _insert_entry(
        self, item: LeafEntry | Node, target_level: int
    ) -> None:
        self._levels_reinserted = set()
        self._pending = [(item, target_level)]
        while self._pending:
            pending_item, level = self._pending.pop(0)
            super()._insert_entry(pending_item, level)

    def _handle_overflow(self, node: Node) -> Node | None:
        if node is not self.root and node.level not in self._levels_reinserted:
            self._levels_reinserted.add(node.level)
            removed = self._shed_for_reinsert(node)
            if removed:
                if freeze_checks_enabled():
                    # Shed children hop levels through the pending queue
                    # while readers can still reach their rectangles; a
                    # writable MBR here would let the reinsert scribble
                    # over a rectangle a concurrent search is pruning on.
                    verify_frozen(
                        removed,
                        role="index.reinsert",
                        site="RStarTree._handle_overflow",
                    )
                self.stats.reinserts += len(removed)
                self._pending.extend((child, node.level) for child in removed)
                return None
        return self._split(node)

    def _shed_for_reinsert(self, node: Node) -> list:
        """Remove the children farthest from the node centre; keep the rest.

        Returns the removed children ordered nearest-first ("close
        reinsert"), which the insertion driver re-adds at the same level.
        """
        count = max(1, int(round(self.reinsert_fraction * len(node.children))))
        count = min(count, len(node.children) - self.min_entries)
        if count < 1:
            return []
        centre = node.mbr.center
        distances = [
            float(np.sum((child.mbr.center - centre) ** 2))
            for child in node.children
        ]
        order = np.argsort(distances)  # ascending: keep the near ones
        keep = [node.children[i] for i in order[: len(order) - count]]
        shed = [node.children[i] for i in order[len(order) - count :]]
        node.children = keep
        node.recompute_mbr()
        return shed

    # ------------------------------------------------------------------
    # ChooseSubtree
    # ------------------------------------------------------------------
    def _choose_subtree(self, node: Node, mbr: MBR) -> Node:
        if node.level == 1:
            return self._choose_by_overlap(node, mbr)
        return super()._choose_subtree(node, mbr)

    @staticmethod
    def _choose_by_overlap(node: Node, mbr: MBR) -> Node:
        """Least overlap enlargement among siblings (R* leaf-level rule)."""
        best = None
        best_key = None
        children = node.children
        for index, child in enumerate(children):
            grown = child.mbr.union(mbr)
            overlap_delta = 0.0
            for other_index, other in enumerate(children):
                if other_index == index:
                    continue
                overlap_delta += grown.overlap_volume(other.mbr)
                overlap_delta -= child.mbr.overlap_volume(other.mbr)
            key = (
                overlap_delta,
                child.mbr.enlargement(mbr),
                child.mbr.volume(),
            )
            if best_key is None or key < best_key:
                best = child
                best_key = key
        return best

    # ------------------------------------------------------------------
    # Margin-driven split
    # ------------------------------------------------------------------
    def _split(self, node: Node) -> Node:
        self.stats.splits += 1
        children = node.children
        axis = self._choose_split_axis(children)
        group_a, group_b = self._choose_split_distribution(children, axis)

        node.children = group_a
        node.recompute_mbr()
        sibling = Node(is_leaf=node.is_leaf, level=node.level)
        sibling.children = group_b
        sibling.recompute_mbr()
        return sibling

    def _distributions(
        self, children_sorted: list[LeafEntry] | list[Node]
    ) -> "Iterator[tuple[list, list]]":
        """Yield every legal (group_a, group_b) prefix/suffix distribution."""
        total = len(children_sorted)
        for split_at in range(self.min_entries, total - self.min_entries + 1):
            yield children_sorted[:split_at], children_sorted[split_at:]

    def _choose_split_axis(
        self, children: list[LeafEntry] | list[Node]
    ) -> int:
        """The axis whose distributions have the least total margin."""
        best_axis = 0
        best_margin = float("inf")
        for axis in range(self.dimension):
            margin_sum = 0.0
            for key in (
                lambda child: (child.mbr.low[axis], child.mbr.high[axis]),
                lambda child: (child.mbr.high[axis], child.mbr.low[axis]),
            ):
                ordered = sorted(children, key=key)
                for group_a, group_b in self._distributions(ordered):
                    margin_sum += MBR.union_all(
                        c.mbr for c in group_a
                    ).margin()
                    margin_sum += MBR.union_all(
                        c.mbr for c in group_b
                    ).margin()
            if margin_sum < best_margin:
                best_margin = margin_sum
                best_axis = axis
        return best_axis

    def _choose_split_distribution(
        self, children: list[LeafEntry] | list[Node], axis: int
    ) -> "tuple[list, list]":
        """Least-overlap (ties: least volume) distribution on the split axis."""
        best = None
        best_key = None
        for key in (
            lambda child: (child.mbr.low[axis], child.mbr.high[axis]),
            lambda child: (child.mbr.high[axis], child.mbr.low[axis]),
        ):
            ordered = sorted(children, key=key)
            for group_a, group_b in self._distributions(ordered):
                mbr_a = MBR.union_all(c.mbr for c in group_a)
                mbr_b = MBR.union_all(c.mbr for c in group_b)
                candidate_key = (
                    mbr_a.overlap_volume(mbr_b),
                    mbr_a.volume() + mbr_b.volume(),
                )
                if best_key is None or candidate_key < best_key:
                    best_key = candidate_key
                    best = (list(group_a), list(group_b))
        return best
