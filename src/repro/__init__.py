"""repro — similarity search for multidimensional data sequences.

A production-quality reproduction of Lee, Chun, Kim, Lee & Chung,
*Similarity Search for Multidimensional Data Sequences*, ICDE 2000.

Quick start::

    import numpy as np
    from repro import SequenceDatabase, SimilaritySearch

    db = SequenceDatabase(dimension=3)
    for i, stream in enumerate(streams):          # (length, 3) arrays
        db.add(stream, sequence_id=f"video-{i}")

    engine = SimilaritySearch(db)
    result = engine.search(query_points, epsilon=0.15)
    result.answers                  # matching sequence ids
    result.solution_intervals       # which sub-streams to play back

Subpackages
-----------
``repro.core``
    The paper's contribution: data model, the ``Dmean``/``D``/``Dmbr``/
    ``Dnorm`` distance hierarchy, MCOST partitioning, the sequence database
    and the three-phase search algorithm.
``repro.index``
    The R-tree family storing segment MBRs (Guttman R-tree, R*-tree, STR
    bulk loading).
``repro.datagen``
    Workload generators: the paper's fractal synthetic sequences, a
    shot-structured video-stream simulator, 1-d time series, image-region
    sequences, and query workloads.
``repro.baselines``
    Comparators: exact sequential scan (ground truth), key-frame search,
    DFT whole-sequence matching, ST-index style 1-d subsequence matching.
``repro.analysis``
    Experiment harness: pruning-rate/recall/response-ratio metrics, the
    paper's parameter grid, and table formatting for Figures 6-10.
``repro.service``
    Concurrent query serving: the snapshot-isolated :class:`QueryEngine`
    with an ε-aware result cache, plus the ``python -m repro serve`` HTTP
    endpoint and its client.
"""

from repro.core import (
    MBR,
    IntervalSet,
    MultidimensionalSequence,
    NormalizedDistance,
    PartitionedSequence,
    SearchResult,
    SearchStats,
    SegmentKey,
    SequenceDatabase,
    SequenceSegment,
    SimilaritySearch,
    SubsequenceHit,
    as_sequence,
    marginal_cost,
    mbr_min_distance,
    mean_distance,
    min_normalized_distance,
    normalized_distance,
    partition_sequence,
    point_distance,
    sequence_distance,
    sliding_mean_distances,
)
from repro.index import RStarTree, RTree, bulk_load_str
from repro.service import QueryEngine, ServiceClient
from repro.util.version import REPRO_VERSION

__version__ = REPRO_VERSION

__all__ = [
    "IntervalSet",
    "MBR",
    "MatchExplanation",
    "MultidimensionalSequence",
    "NormalizedDistance",
    "PartitionedSequence",
    "QueryEngine",
    "RStarTree",
    "RTree",
    "SearchResult",
    "SearchStats",
    "SegmentKey",
    "SequenceDatabase",
    "SequenceSegment",
    "ServiceClient",
    "SimilaritySearch",
    "SubsequenceHit",
    "__version__",
    "as_sequence",
    "bulk_load_str",
    "marginal_cost",
    "mbr_min_distance",
    "mean_distance",
    "min_normalized_distance",
    "normalized_distance",
    "partition_sequence",
    "point_distance",
    "sequence_distance",
    "sliding_mean_distances",
]
