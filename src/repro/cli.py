"""Command-line interface: run the paper's experiments without writing code.

Usage::

    python -m repro sweep --dataset video --sequences 200 --queries 5
    python -m repro demo --dataset fractal
    python -m repro generate --dataset video --count 100 --out corpus.npz
    python -m repro serve --corpus corpus.npz --workers 8

``sweep`` runs the Figure 6-10 threshold sweep and prints every series with
the paper's bands; ``demo`` runs one annotated search; ``generate`` writes a
corpus as a reloadable :class:`~repro.core.database.SequenceDatabase`;
``serve`` exposes a saved corpus through the concurrent
:mod:`repro.service` HTTP endpoint.
"""

from __future__ import annotations

import argparse
import sys
import threading
from collections.abc import Sequence

from repro.analysis.experiment import ExperimentConfig, ExperimentRunner
from repro.analysis.report import figure_table, sparkline_panel

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Similarity search for multidimensional data sequences "
            "(Lee et al., ICDE 2000) — experiment driver"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    sweep = commands.add_parser(
        "sweep", help="run the Figure 6-10 threshold sweep"
    )
    _add_dataset_arguments(sweep)
    sweep.add_argument(
        "--queries", type=int, default=5, help="queries per threshold"
    )
    sweep.add_argument(
        "--thresholds",
        type=float,
        nargs="+",
        default=None,
        help="threshold grid (default: the paper's 0.05..0.50)",
    )

    demo = commands.add_parser("demo", help="run one annotated search")
    _add_dataset_arguments(demo)
    demo.add_argument("--epsilon", type=float, default=0.1)

    generate = commands.add_parser(
        "generate", help="generate a corpus and save it as a database"
    )
    _add_dataset_arguments(generate)
    generate.add_argument("--out", required=True, help="output .npz path")

    serve = commands.add_parser(
        "serve", help="serve a saved corpus over HTTP (repro.service)"
    )
    serve.add_argument(
        "--corpus",
        default=None,
        help=(
            ".npz corpus written by generate/save (optional when --data-dir "
            "already holds a snapshot)"
        ),
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8765, help="0 picks a free port"
    )
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument(
        "--queue-cap",
        type=int,
        default=64,
        help="requests allowed to queue beyond the running ones",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=128,
        help="epsilon-aware result cache entries (0 disables)",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="default per-request deadline in seconds",
    )
    serve.add_argument(
        "--trace", default=None, help="JSON-lines trace file for searches"
    )
    serve.add_argument(
        "--data-dir",
        default=None,
        help=(
            "durability directory (snapshot + write-ahead log); writes are "
            "logged before they are acknowledged and replayed on restart"
        ),
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        help=(
            "auto-checkpoint (snapshot save + WAL reset) after this many "
            "logged writes (0: only on shutdown)"
        ),
    )
    serve.add_argument(
        "--no-fsync",
        action="store_true",
        help="skip fsync on WAL appends (faster, loses the power-loss guarantee)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds to wait for in-flight requests before closing",
    )
    serve.add_argument(
        "--degrade-after",
        type=int,
        default=None,
        help=(
            "enter degraded mode (shed writes before reads) after this many "
            "consecutive overload rejections"
        ),
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log each HTTP request"
    )

    return parser


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", choices=("fractal", "video"), default="fractal"
    )
    parser.add_argument("--sequences", type=int, default=200)
    parser.add_argument("--count", type=int, default=None, help=argparse.SUPPRESS)
    parser.add_argument("--seed", type=int, default=2000)


def _make_runner(
    args: argparse.Namespace,
    thresholds: Sequence[float] | None = None,
    queries: int = 5,
) -> ExperimentRunner:
    config = ExperimentConfig(
        dataset=args.dataset,
        n_sequences=args.count or args.sequences,
        queries_per_threshold=queries,
        thresholds=tuple(thresholds)
        if thresholds
        else ExperimentConfig().thresholds,
        seed=args.seed,
    )
    return ExperimentRunner(config)


def _command_sweep(args: argparse.Namespace) -> int:
    runner = _make_runner(args, thresholds=args.thresholds, queries=args.queries)
    print(
        f"sweeping {len(runner.database)} {args.dataset} sequences "
        f"({runner.database.segment_count} MBRs), "
        f"{args.queries} queries per threshold\n"
    )
    rows = runner.run(verbose=True)
    figures = ("fig6", "fig8", "fig10") if args.dataset == "fractal" else (
        "fig7",
        "fig9",
        "fig10",
    )
    for figure in figures:
        print()
        print(figure_table(figure, rows))
    if len(rows) > 1:
        print()
        print(
            sparkline_panel(
                rows,
                ["pr_dmbr", "pr_dnorm", "si_pruning", "si_recall", "response_ratio"],
            )
        )
    return 0


def _command_demo(args: argparse.Namespace) -> int:
    from repro.datagen.queries import generate_queries

    runner = _make_runner(args, thresholds=(args.epsilon,), queries=1)
    corpus = {
        sid: runner.database.sequence(sid) for sid in runner.database.ids()
    }
    query = generate_queries(corpus, 1, seed=args.seed + 1)[0]
    result = runner.engine.search(query, args.epsilon)
    truth = runner.scanner.scan(query, args.epsilon, find_intervals=False)
    print(
        f"dataset={args.dataset} sequences={len(corpus)} "
        f"epsilon={args.epsilon}"
    )
    print(
        f"Phase 2 candidates: {len(result.candidates)}   "
        f"Phase 3 answers: {len(result.answers)}   "
        f"exactly relevant: {len(truth.answers)}"
    )
    print(
        f"false dismissals: {len(truth.answers - set(result.answers))} "
        f"(always 0 by Lemmas 1-3)"
    )
    for sequence_id in list(result.answers)[:5]:
        interval = result.solution_intervals[sequence_id]
        spans = ", ".join(f"[{a}:{b})" for a, b in interval.intervals[:4])
        print(f"  {sequence_id!r}: solution interval {spans}")
    print(
        f"time: method {result.stats.total_seconds * 1e3:.1f} ms, "
        f"scan {truth.seconds * 1e3:.1f} ms"
    )
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    runner.database.save(args.out)
    print(
        f"wrote {len(runner.database)} {args.dataset} sequences "
        f"({runner.database.point_count} points) to {args.out}"
    )
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import signal
    from pathlib import Path

    from repro.core.database import SequenceDatabase
    from repro.service import DurabilityConfig, QueryEngine
    from repro.service.http import serve as bind_server
    from repro.service.http import shutdown_gracefully

    durability = None
    if args.data_dir is not None:
        durability = DurabilityConfig(
            Path(args.data_dir),
            fsync=not args.no_fsync,
            checkpoint_every=args.checkpoint_every,
        )

    database = None
    if args.corpus is not None:
        database = SequenceDatabase.load(args.corpus)
    elif durability is None or not durability.snapshot_path.exists():
        print(
            "repro serve: --corpus is required unless --data-dir holds a "
            "previous snapshot",
            file=sys.stderr,
        )
        return 2

    engine = QueryEngine(
        database,
        workers=args.workers,
        queue_cap=args.queue_cap,
        cache_size=args.cache_size,
        default_timeout=args.timeout,
        trace_path=args.trace,
        durability=durability,
        degrade_after=args.degrade_after,
    )
    server = bind_server(
        engine, host=args.host, port=args.port, verbose=args.verbose
    )
    host, port = server.server_address[:2]
    durable = " durable" if durability is not None else ""
    print(
        f"repro serve: {len(engine)} sequences "
        f"({engine.stats()['segments']} MBRs) on http://{host}:{port} "
        f"with {args.workers} workers{durable}",
        flush=True,
    )

    # serve_forever() and shutdown() must run on different threads, so the
    # accept loop gets a worker thread and the main thread waits for a
    # signal (SIGINT/SIGTERM) to trigger the orderly teardown.
    stop = threading.Event()

    def _request_stop(signum: int, frame: object) -> None:
        stop.set()

    signal.signal(signal.SIGINT, _request_stop)
    signal.signal(signal.SIGTERM, _request_stop)
    accept_loop = threading.Thread(
        target=server.serve_forever, name="repro-serve-accept", daemon=True
    )
    accept_loop.start()
    try:
        stop.wait()
    finally:
        # Stop accepting, let in-flight requests finish (bounded), then
        # close the engine (checkpointing if durable) and release the port.
        drained = shutdown_gracefully(
            server, engine, drain_timeout=args.drain_timeout
        )
        accept_loop.join(timeout=5.0)
        suffix = "" if drained else " (drain timed out)"
        print(f"repro serve: shut down cleanly{suffix}", flush=True)
    return 0


_COMMANDS = {
    "sweep": _command_sweep,
    "demo": _command_demo,
    "generate": _command_generate,
    "serve": _command_serve,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
