"""Command-line interface: run the paper's experiments without writing code.

Usage::

    python -m repro sweep --dataset video --sequences 200 --queries 5
    python -m repro demo --dataset fractal
    python -m repro generate --dataset video --count 100 --out corpus.npz
    python -m repro serve --corpus corpus.npz --workers 8

``sweep`` runs the Figure 6-10 threshold sweep and prints every series with
the paper's bands; ``demo`` runs one annotated search; ``generate`` writes a
corpus as a reloadable :class:`~repro.core.database.SequenceDatabase`;
``serve`` exposes a saved corpus through the concurrent
:mod:`repro.service` HTTP endpoint.
"""

from __future__ import annotations

import argparse
import sys
import threading
from collections.abc import Sequence

from repro.analysis.experiment import ExperimentConfig, ExperimentRunner
from repro.analysis.report import figure_table, sparkline_panel

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Similarity search for multidimensional data sequences "
            "(Lee et al., ICDE 2000) — experiment driver"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    sweep = commands.add_parser(
        "sweep", help="run the Figure 6-10 threshold sweep"
    )
    _add_dataset_arguments(sweep)
    sweep.add_argument(
        "--queries", type=int, default=5, help="queries per threshold"
    )
    sweep.add_argument(
        "--thresholds",
        type=float,
        nargs="+",
        default=None,
        help="threshold grid (default: the paper's 0.05..0.50)",
    )

    demo = commands.add_parser("demo", help="run one annotated search")
    _add_dataset_arguments(demo)
    demo.add_argument("--epsilon", type=float, default=0.1)

    generate = commands.add_parser(
        "generate", help="generate a corpus and save it as a database"
    )
    _add_dataset_arguments(generate)
    generate.add_argument("--out", required=True, help="output .npz path")

    serve = commands.add_parser(
        "serve", help="serve a saved corpus over HTTP (repro.service)"
    )
    serve.add_argument(
        "--corpus",
        default=None,
        help=(
            ".npz corpus written by generate/save (optional when --data-dir "
            "already holds a snapshot)"
        ),
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8765, help="0 picks a free port"
    )
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument(
        "--queue-cap",
        type=int,
        default=64,
        help="requests allowed to queue beyond the running ones",
    )
    serve.add_argument(
        "--queue-target",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "queue-wait target for adaptive (AIMD) admission: the limit "
            "shrinks when dequeued requests waited longer than this and "
            "grows back while waits hold under it (default: static cap)"
        ),
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=128,
        help="epsilon-aware result cache entries (0 disables)",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="default per-request deadline in seconds",
    )
    serve.add_argument(
        "--trace", default=None, help="JSON-lines trace file for searches"
    )
    serve.add_argument(
        "--data-dir",
        default=None,
        help=(
            "durability directory (snapshot + write-ahead log); writes are "
            "logged before they are acknowledged and replayed on restart"
        ),
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        help=(
            "auto-checkpoint (snapshot save + WAL reset) after this many "
            "logged writes (0: only on shutdown)"
        ),
    )
    serve.add_argument(
        "--no-fsync",
        action="store_true",
        help="skip fsync on WAL appends (faster, loses the power-loss guarantee)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds to wait for in-flight requests before closing",
    )
    serve.add_argument(
        "--degrade-after",
        type=int,
        default=None,
        help=(
            "enter degraded mode (shed writes before reads) after this many "
            "consecutive overload rejections"
        ),
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log each HTTP request"
    )
    serve.add_argument(
        "--follow",
        default=None,
        metavar="URL",
        help=(
            "run as a read-only follower of this leader: tail its WAL over "
            "/wal/tail and reject direct writes (requires --data-dir for "
            "the durable cursor)"
        ),
    )
    serve.add_argument(
        "--poll-interval",
        type=float,
        default=0.2,
        help="seconds between WAL tail polls in follower mode",
    )

    cluster = commands.add_parser(
        "cluster-serve",
        help="coordinate sharded, replicated backends behind one endpoint",
    )
    cluster.add_argument(
        "--backend",
        action="append",
        dest="backends",
        default=None,
        metavar="URL",
        help=(
            "a running repro-serve base URL; repeat per backend "
            "(attached mode)"
        ),
    )
    cluster.add_argument(
        "--corpus",
        default=None,
        help=(
            ".npz corpus to shard across in-process backends "
            "(self-contained mode; mutually exclusive with --backend)"
        ),
    )
    cluster.add_argument(
        "--local-backends",
        type=int,
        default=3,
        help="in-process backends to boot in self-contained mode",
    )
    cluster.add_argument(
        "--shards",
        type=int,
        default=None,
        help="corpus shards (default: one per backend)",
    )
    cluster.add_argument(
        "--replication", type=int, default=1, help="replicas per shard"
    )
    cluster.add_argument(
        "--write-quorum",
        type=int,
        default=None,
        help="replica acks required per write (default: majority)",
    )
    cluster.add_argument("--host", default="127.0.0.1")
    cluster.add_argument(
        "--port", type=int, default=8770, help="0 picks a free port"
    )
    cluster.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker threads per in-process backend",
    )
    cluster.add_argument(
        "--probe-interval",
        type=float,
        default=2.0,
        help="seconds between /healthz sweeps of the backends",
    )
    cluster.add_argument(
        "--no-hedge",
        action="store_true",
        help="disable hedged (backup) requests for slow shards",
    )
    cluster.add_argument(
        "--hedge-quantile",
        type=float,
        default=0.95,
        help="latency quantile after which a shard request is hedged",
    )
    cluster.add_argument(
        "--backend-timeout",
        type=float,
        default=10.0,
        help="socket timeout per backend call (attached mode)",
    )
    cluster.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds to wait for in-flight requests before closing",
    )
    cluster.add_argument(
        "--verbose", action="store_true", help="log each HTTP request"
    )
    cluster.add_argument(
        "--journal-dir",
        default=None,
        help=(
            "directory for the durable repair journal; queued read-repair "
            "ops survive a coordinator restart"
        ),
    )
    cluster.add_argument(
        "--max-repair-ops",
        type=int,
        default=10_000,
        help=(
            "per-backend repair queue bound; overflow forces a full "
            "snapshot resync of the lagging backend"
        ),
    )
    cluster.add_argument(
        "--follower",
        action="append",
        dest="follower_specs",
        default=None,
        metavar="URL=LEADER",
        help=(
            "a follower replica as URL=LEADER_INDEX (attached mode); "
            "repeatable — followers serve bounded-staleness reads for "
            "their leader's shards"
        ),
    )
    cluster.add_argument(
        "--max-lag-records",
        type=int,
        default=None,
        help=(
            "staleness bound for follower reads (records behind the "
            "leader); unset keeps followers probe-only"
        ),
    )
    cluster.add_argument(
        "--budget-floor",
        type=float,
        default=0.005,
        metavar="SECONDS",
        help=(
            "dispatch floor: a failover/hedge sub-call is never sent when "
            "the request's remaining budget is below this"
        ),
    )

    route = commands.add_parser(
        "cluster-route",
        help="print the shard/replica placement of sequence ids",
    )
    route.add_argument(
        "--backends", type=int, required=True, help="backend count"
    )
    route.add_argument("--shards", type=int, default=None)
    route.add_argument("--replication", type=int, default=1)
    route.add_argument(
        "ids",
        nargs="+",
        help="sequence ids (decimal tokens route as ints, others as strs)",
    )

    wal_inspect = commands.add_parser(
        "wal-inspect",
        help="dump and verify a write-ahead log without modifying it",
    )
    wal_inspect.add_argument("path", help="path to a wal.log file")
    wal_inspect.add_argument(
        "--records",
        action="store_true",
        help="print every decoded record, not just the summary",
    )

    bench = commands.add_parser(
        "bench",
        help="run the canonical benchmark suite and write BENCH_*.json",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized profile (whole suite well under two minutes)",
    )
    bench.add_argument(
        "--suite",
        action="append",
        dest="suites",
        default=None,
        choices=("engine", "service", "cluster"),
        help="run only this suite (repeatable; default: all)",
    )
    bench.add_argument(
        "--assert-slo",
        action="store_true",
        help="exit non-zero if any SLO floor/ceiling is violated",
    )
    bench.add_argument(
        "--slo",
        action="append",
        dest="slos",
        default=None,
        metavar="EXPR",
        help=(
            "extra SLO rule 'suite/scenario:metric>=X' (or <=X); "
            "repeatable, extends the built-in floors"
        ),
    )
    bench.add_argument(
        "--out",
        default=".",
        help="directory for the BENCH_<suite>.json files (default: repo root)",
    )
    bench.add_argument(
        "--seed", type=int, default=2000, help="workload seed"
    )
    bench.add_argument(
        "--list",
        action="store_true",
        help="list registered scenarios and exit without running",
    )

    bench_diff = commands.add_parser(
        "bench-diff",
        help="compare two BENCH_<suite>.json files for regressions",
    )
    bench_diff.add_argument("baseline", help="older trajectory file")
    bench_diff.add_argument("current", help="newer trajectory file")
    bench_diff.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="relative change allowed in the regressing direction",
    )

    return parser


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", choices=("fractal", "video"), default="fractal"
    )
    parser.add_argument("--sequences", type=int, default=200)
    parser.add_argument("--count", type=int, default=None, help=argparse.SUPPRESS)
    parser.add_argument("--seed", type=int, default=2000)


def _make_runner(
    args: argparse.Namespace,
    thresholds: Sequence[float] | None = None,
    queries: int = 5,
) -> ExperimentRunner:
    config = ExperimentConfig(
        dataset=args.dataset,
        n_sequences=args.count or args.sequences,
        queries_per_threshold=queries,
        thresholds=tuple(thresholds)
        if thresholds
        else ExperimentConfig().thresholds,
        seed=args.seed,
    )
    return ExperimentRunner(config)


def _command_sweep(args: argparse.Namespace) -> int:
    runner = _make_runner(args, thresholds=args.thresholds, queries=args.queries)
    print(
        f"sweeping {len(runner.database)} {args.dataset} sequences "
        f"({runner.database.segment_count} MBRs), "
        f"{args.queries} queries per threshold\n"
    )
    rows = runner.run(verbose=True)
    figures = ("fig6", "fig8", "fig10") if args.dataset == "fractal" else (
        "fig7",
        "fig9",
        "fig10",
    )
    for figure in figures:
        print()
        print(figure_table(figure, rows))
    if len(rows) > 1:
        print()
        print(
            sparkline_panel(
                rows,
                ["pr_dmbr", "pr_dnorm", "si_pruning", "si_recall", "response_ratio"],
            )
        )
    return 0


def _command_demo(args: argparse.Namespace) -> int:
    from repro.datagen.queries import generate_queries

    runner = _make_runner(args, thresholds=(args.epsilon,), queries=1)
    corpus = {
        sid: runner.database.sequence(sid) for sid in runner.database.ids()
    }
    query = generate_queries(corpus, 1, seed=args.seed + 1)[0]
    result = runner.engine.search(query, args.epsilon)
    truth = runner.scanner.scan(query, args.epsilon, find_intervals=False)
    print(
        f"dataset={args.dataset} sequences={len(corpus)} "
        f"epsilon={args.epsilon}"
    )
    print(
        f"Phase 2 candidates: {len(result.candidates)}   "
        f"Phase 3 answers: {len(result.answers)}   "
        f"exactly relevant: {len(truth.answers)}"
    )
    print(
        f"false dismissals: {len(truth.answers - set(result.answers))} "
        f"(always 0 by Lemmas 1-3)"
    )
    for sequence_id in list(result.answers)[:5]:
        interval = result.solution_intervals[sequence_id]
        spans = ", ".join(f"[{a}:{b})" for a, b in interval.intervals[:4])
        print(f"  {sequence_id!r}: solution interval {spans}")
    print(
        f"time: method {result.stats.total_seconds * 1e3:.1f} ms, "
        f"scan {truth.seconds * 1e3:.1f} ms"
    )
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    runner.database.save(args.out)
    print(
        f"wrote {len(runner.database)} {args.dataset} sequences "
        f"({runner.database.point_count} points) to {args.out}"
    )
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import signal
    from pathlib import Path

    from repro.core.database import SequenceDatabase
    from repro.service import (
        DurabilityConfig,
        QueryEngine,
        ServiceClient,
        WalFollower,
    )
    from repro.service.http import serve as bind_server
    from repro.service.http import shutdown_gracefully

    if args.follow is not None and args.data_dir is None:
        print(
            "repro serve: --follow requires --data-dir (the follower's "
            "durable cursor and WAL live there)",
            file=sys.stderr,
        )
        return 2

    durability = None
    if args.data_dir is not None:
        durability = DurabilityConfig(
            Path(args.data_dir),
            fsync=not args.no_fsync,
            checkpoint_every=args.checkpoint_every,
        )

    leader = None
    if args.follow is not None:
        leader = ServiceClient(args.follow, timeout=30.0)

    database = None
    if args.corpus is not None:
        database = SequenceDatabase.load(args.corpus)
    elif durability is None or not durability.snapshot_path.exists():
        if leader is not None:
            # A fresh follower bootstraps an empty corpus in the leader's
            # dimension; the tail loop (or a snapshot resync) fills it.
            try:
                dimension = int(leader.healthz()["dimension"])
            except Exception as error:  # error-ok: operator-facing bootstrap — reported on stderr, exits 2
                print(
                    f"repro serve: cannot reach leader {args.follow}: "
                    f"{error}",
                    file=sys.stderr,
                )
                return 2
            database = SequenceDatabase(dimension)
        else:
            print(
                "repro serve: --corpus is required unless --data-dir holds "
                "a previous snapshot",
                file=sys.stderr,
            )
            return 2

    engine = QueryEngine(
        database,
        workers=args.workers,
        queue_cap=args.queue_cap,
        queue_target_s=args.queue_target,
        cache_size=args.cache_size,
        default_timeout=args.timeout,
        trace_path=args.trace,
        durability=durability,
        degrade_after=args.degrade_after,
    )
    follower = None
    if leader is not None:
        follower = WalFollower(
            engine,
            leader,
            cursor_path=Path(args.data_dir) / "follower_cursor.json",
            leader_url=args.follow,
        )
    server = bind_server(
        engine,
        host=args.host,
        port=args.port,
        verbose=args.verbose,
        follower=follower,
    )
    host, port = server.server_address[:2]
    durable = " durable" if durability is not None else ""
    role = f" following {args.follow}" if follower is not None else ""
    print(
        f"repro serve: {len(engine)} sequences "
        f"({engine.stats()['segments']} MBRs) on http://{host}:{port} "
        f"with {args.workers} workers{durable}{role}",
        flush=True,
    )

    # serve_forever() and shutdown() must run on different threads, so the
    # accept loop gets a worker thread and the main thread waits for a
    # signal (SIGINT/SIGTERM) to trigger the orderly teardown.
    stop = threading.Event()

    def _request_stop(signum: int, frame: object) -> None:
        stop.set()

    signal.signal(signal.SIGINT, _request_stop)
    signal.signal(signal.SIGTERM, _request_stop)
    accept_loop = threading.Thread(
        target=server.serve_forever, name="repro-serve-accept", daemon=True
    )
    accept_loop.start()
    tail_loop = None
    if follower is not None:
        tail_loop = threading.Thread(
            target=follower.run,
            args=(stop,),
            kwargs={"interval": args.poll_interval},
            name="repro-serve-follower",
            daemon=True,
        )
        tail_loop.start()
    try:
        stop.wait()
    finally:
        stop.set()
        if tail_loop is not None:
            tail_loop.join(timeout=max(5.0, 2 * args.poll_interval))
        # Stop accepting, let in-flight requests finish (bounded), then
        # close the engine (checkpointing if durable) and release the port.
        drained = shutdown_gracefully(
            server, engine, drain_timeout=args.drain_timeout
        )
        accept_loop.join(timeout=5.0)
        suffix = "" if drained else " (drain timed out)"
        print(f"repro serve: shut down cleanly{suffix}", flush=True)
    return 0


def _parse_route_id(token: str) -> object:
    """CLI id token: decimal tokens route as ints, everything else as strs."""
    try:
        return int(token)
    except ValueError:
        return token


def _command_cluster_serve(args: argparse.Namespace) -> int:
    import signal
    import time

    from repro.cluster import (
        ClusterCoordinator,
        HedgePolicy,
        LocalBackend,
        ShardRouter,
        serve_cluster,
    )
    from repro.cluster.backends import Backend
    from repro.service import QueryEngine, ServiceClient
    from repro.util.errtrace import record_swallowed

    if bool(args.backends) == bool(args.corpus):
        print(
            "repro cluster-serve: pass either --backend URL... (attached "
            "mode) or --corpus PATH (self-contained mode), not both",
            file=sys.stderr,
        )
        return 2

    backends: list[Backend]
    engines: list[QueryEngine] = []
    seed_ids: list[object] = []
    if args.backends:
        backends = [
            ServiceClient(url, timeout=args.backend_timeout)
            for url in args.backends
        ]
        mode = f"{len(backends)} attached backend(s)"
    else:
        from repro.core.database import SequenceDatabase

        corpus = SequenceDatabase.load(args.corpus)
        seed_ids = corpus.ids()
        count = args.local_backends
        router = ShardRouter(
            num_backends=count,
            num_shards=args.shards,
            replication=args.replication,
        )
        shards = [
            SequenceDatabase(corpus.dimension) for _ in range(count)
        ]
        for sequence_id in seed_ids:
            placement = router.placement(sequence_id)
            for backend_index in placement.replicas:
                shards[backend_index].add(
                    corpus.sequence(sequence_id).points,
                    sequence_id=sequence_id,
                )
        engines = [
            QueryEngine(shard, workers=args.workers) for shard in shards
        ]
        backends = [
            LocalBackend(engine, name=f"local-{index}")
            for index, engine in enumerate(engines)
        ]
        mode = (
            f"{len(seed_ids)} sequences sharded over {count} "
            "in-process backend(s)"
        )

    followers: list[tuple[Backend, int]] = []
    for spec in args.follower_specs or []:
        url, separator, leader_token = spec.rpartition("=")
        if not separator or not url or not leader_token.isdigit():
            print(
                f"repro cluster-serve: bad --follower {spec!r} "
                "(expected URL=LEADER_INDEX)",
                file=sys.stderr,
            )
            return 2
        followers.append(
            (
                ServiceClient(url, timeout=args.backend_timeout),
                int(leader_token),
            )
        )

    hedge = (
        None
        if args.no_hedge
        else HedgePolicy(quantile=args.hedge_quantile)
    )
    coordinator = ClusterCoordinator(
        backends,
        num_shards=args.shards,
        replication=args.replication,
        hedge=hedge,
        write_quorum=args.write_quorum,
        probe_interval=args.probe_interval,
        journal_dir=args.journal_dir,
        max_repair_ops=args.max_repair_ops,
        followers=followers or None,
        max_lag_records=args.max_lag_records,
        min_subcall_budget=args.budget_floor,
    )
    coordinator.seed_order(seed_ids)
    server = serve_cluster(
        coordinator, host=args.host, port=args.port, verbose=args.verbose
    )
    host, port = server.server_address[:2]
    describe = coordinator.router.describe()
    print(
        f"repro cluster-serve: {mode}, {describe['shards']} shard(s) x "
        f"{describe['replication']} replica(s) on http://{host}:{port}",
        flush=True,
    )

    stop = threading.Event()

    def _request_stop(signum: int, frame: object) -> None:
        stop.set()

    def _probe_loop() -> None:
        # The probe thread must outlive any single bad sweep: if it
        # died, down backends would never be re-probed and read-repair
        # queues would never drain for the life of the process.
        while not stop.wait(args.probe_interval):
            try:
                coordinator.probe()
            except Exception as error:  # error-ok: probe thread must outlive any single bad sweep
                record_swallowed(
                    error,
                    role="operator.probe",
                    site="cluster_serve._probe_loop",
                    cancellation_ok=True,
                )
                print(
                    f"repro cluster-serve: probe sweep failed: {error!r}",
                    file=sys.stderr,
                    flush=True,
                )

    signal.signal(signal.SIGINT, _request_stop)
    signal.signal(signal.SIGTERM, _request_stop)
    accept_loop = threading.Thread(
        target=server.serve_forever, name="repro-cluster-accept", daemon=True
    )
    accept_loop.start()
    prober = threading.Thread(
        target=_probe_loop, name="repro-cluster-probe", daemon=True
    )
    prober.start()
    try:
        stop.wait()
    finally:
        server.shutdown()
        deadline = time.monotonic() + args.drain_timeout
        drained = server.drain(args.drain_timeout)
        coordinator.close()
        server.server_close()
        accept_loop.join(timeout=max(0.0, deadline - time.monotonic()))
        prober.join(timeout=args.probe_interval + 1.0)
        for engine in engines:
            engine.close()
        suffix = "" if drained else " (drain timed out)"
        print(f"repro cluster-serve: shut down cleanly{suffix}", flush=True)
    return 0


def _command_cluster_route(args: argparse.Namespace) -> int:
    from repro.cluster import ShardRouter

    router = ShardRouter(
        num_backends=args.backends,
        num_shards=args.shards,
        replication=args.replication,
    )
    describe = router.describe()
    print(
        f"{describe['backends']} backend(s), {describe['shards']} shard(s), "
        f"replication {describe['replication']}"
    )
    for token in args.ids:
        placement = router.placement(_parse_route_id(token))
        replicas = ", ".join(str(index) for index in placement.replicas)
        print(
            f"  {placement.sequence_id!r}: shard {placement.shard} "
            f"-> backends [{replicas}]"
        )
    return 0


def _command_wal_inspect(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.service.wal import inspect_wal

    path = Path(args.path)
    if not path.exists():
        print(f"repro wal-inspect: {path}: no such file", file=sys.stderr)
        return 2
    inspection = inspect_wal(path)
    if not inspection.magic_ok:
        print(f"{path}: not a repro WAL (bad magic header)")
        return 1
    records = inspection.records
    ops = {"insert": 0, "append": 0, "remove": 0}
    for record in records:
        ops[record.op] += 1
    print(
        f"{path}: {inspection.size} bytes, {len(records)} valid record(s) "
        f"(insert {ops['insert']}, append {ops['append']}, "
        f"remove {ops['remove']})"
    )
    print(
        f"  seqs: horizon {inspection.horizon}, last_seq "
        f"{inspection.last_seq} (shippable range "
        f"({inspection.horizon}, {inspection.last_seq}])"
    )
    if args.records:
        for entry in inspection.entries:
            record = entry.record
            if record is None:
                if entry.checkpoint_seq is not None:
                    print(
                        f"  @{entry.offset:<8} crc=ok checkpoint "
                        f"seq={entry.checkpoint_seq}"
                    )
                continue
            extent = (
                "" if record.points is None else f" points={len(record.points)}"
            )
            length = "" if record.length is None else f" length={record.length}"
            print(
                f"  @{entry.offset:<8} crc=ok {record.op:<6} "
                f"seq={record.seq} id={record.sequence_id!r}{extent}{length}"
            )
    if inspection.torn:
        tail = inspection.entries[-1] if inspection.entries else None
        reason = tail.error if tail is not None and tail.error else "torn tail"
        print(
            f"  CORRUPT @{inspection.valid_bytes}: {reason} "
            f"({inspection.size - inspection.valid_bytes} byte(s) after the "
            "last valid record; recovery would truncate here)"
        )
        return 1
    print("  tail: clean (every byte accounted for)")
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    import datetime

    from repro.bench import (
        DEFAULT_SLO_RULES,
        BenchProfile,
        BenchRunConfig,
        iter_scenarios,
        parse_slo,
        run_bench,
    )
    from repro.bench.trajectory import detect_git_sha, detect_machine

    if args.list:
        for scenario in iter_scenarios():
            print(f"{scenario.suite}/{scenario.name}: {scenario.summary}")
        return 0

    rules = list(DEFAULT_SLO_RULES)
    for expression in args.slos or ():
        try:
            rules.append(parse_slo(expression))
        except ValueError as error:
            print(f"repro bench: {error}", file=sys.stderr)
            return 2

    profile = BenchProfile.quick() if args.quick else BenchProfile.full()
    # Provenance is sampled once here, at the entry point — the bench
    # library itself never reads a clock or the repository.
    config = BenchRunConfig(
        profile=profile,
        out_dir=args.out,
        suites=tuple(dict.fromkeys(args.suites)) if args.suites else (),
        seed=args.seed,
        machine=detect_machine(),
        git_sha=detect_git_sha(),
        timestamp=datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        slo_rules=tuple(rules),
    )
    outcome = run_bench(config, progress=lambda message: print(message, flush=True))
    for result in outcome.results:
        rendered = "  ".join(
            f"{name}={value:.4g}" for name, value in result.metrics.items()
        )
        print(f"{result.suite}/{result.scenario}: {rendered}")
    for violation in outcome.violations:
        print(f"SloViolation: {violation}", file=sys.stderr)
    if outcome.violations and args.assert_slo:
        return 1
    return 0


def _command_bench_diff(args: argparse.Namespace) -> int:
    from repro.bench import diff_trajectories, load_trajectory

    try:
        baseline = load_trajectory(args.baseline)
        current = load_trajectory(args.current)
        regressions = diff_trajectories(
            baseline, current, tolerance=args.tolerance
        )
    except (OSError, ValueError) as error:
        print(f"repro bench-diff: {error}", file=sys.stderr)
        return 2
    if not regressions:
        print(
            f"no regressions beyond {args.tolerance:.0%} "
            f"({baseline['suite']} suite, "
            f"{baseline['git_sha'][:12]} -> {current['git_sha'][:12]})"
        )
        return 0
    for regression in regressions:
        print(f"regression: {regression.describe()}", file=sys.stderr)
    return 1


_COMMANDS = {
    "sweep": _command_sweep,
    "demo": _command_demo,
    "generate": _command_generate,
    "serve": _command_serve,
    "cluster-serve": _command_cluster_serve,
    "cluster-route": _command_cluster_route,
    "wal-inspect": _command_wal_inspect,
    "bench": _command_bench,
    "bench-diff": _command_bench_diff,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
