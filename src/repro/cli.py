"""Command-line interface: run the paper's experiments without writing code.

Usage::

    python -m repro sweep --dataset video --sequences 200 --queries 5
    python -m repro demo --dataset fractal
    python -m repro generate --dataset video --count 100 --out corpus.npz

``sweep`` runs the Figure 6-10 threshold sweep and prints every series with
the paper's bands; ``demo`` runs one annotated search; ``generate`` writes a
corpus as a reloadable :class:`~repro.core.database.SequenceDatabase`.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.analysis.experiment import ExperimentConfig, ExperimentRunner
from repro.analysis.report import figure_table, sparkline_panel

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Similarity search for multidimensional data sequences "
            "(Lee et al., ICDE 2000) — experiment driver"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    sweep = commands.add_parser(
        "sweep", help="run the Figure 6-10 threshold sweep"
    )
    _add_dataset_arguments(sweep)
    sweep.add_argument(
        "--queries", type=int, default=5, help="queries per threshold"
    )
    sweep.add_argument(
        "--thresholds",
        type=float,
        nargs="+",
        default=None,
        help="threshold grid (default: the paper's 0.05..0.50)",
    )

    demo = commands.add_parser("demo", help="run one annotated search")
    _add_dataset_arguments(demo)
    demo.add_argument("--epsilon", type=float, default=0.1)

    generate = commands.add_parser(
        "generate", help="generate a corpus and save it as a database"
    )
    _add_dataset_arguments(generate)
    generate.add_argument("--out", required=True, help="output .npz path")

    return parser


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", choices=("fractal", "video"), default="fractal"
    )
    parser.add_argument("--sequences", type=int, default=200)
    parser.add_argument("--count", type=int, default=None, help=argparse.SUPPRESS)
    parser.add_argument("--seed", type=int, default=2000)


def _make_runner(
    args: argparse.Namespace,
    thresholds: Sequence[float] | None = None,
    queries: int = 5,
) -> ExperimentRunner:
    config = ExperimentConfig(
        dataset=args.dataset,
        n_sequences=args.count or args.sequences,
        queries_per_threshold=queries,
        thresholds=tuple(thresholds)
        if thresholds
        else ExperimentConfig().thresholds,
        seed=args.seed,
    )
    return ExperimentRunner(config)


def _command_sweep(args: argparse.Namespace) -> int:
    runner = _make_runner(args, thresholds=args.thresholds, queries=args.queries)
    print(
        f"sweeping {len(runner.database)} {args.dataset} sequences "
        f"({runner.database.segment_count} MBRs), "
        f"{args.queries} queries per threshold\n"
    )
    rows = runner.run(verbose=True)
    figures = ("fig6", "fig8", "fig10") if args.dataset == "fractal" else (
        "fig7",
        "fig9",
        "fig10",
    )
    for figure in figures:
        print()
        print(figure_table(figure, rows))
    if len(rows) > 1:
        print()
        print(
            sparkline_panel(
                rows,
                ["pr_dmbr", "pr_dnorm", "si_pruning", "si_recall", "response_ratio"],
            )
        )
    return 0


def _command_demo(args: argparse.Namespace) -> int:
    from repro.datagen.queries import generate_queries

    runner = _make_runner(args, thresholds=(args.epsilon,), queries=1)
    corpus = {
        sid: runner.database.sequence(sid) for sid in runner.database.ids()
    }
    query = generate_queries(corpus, 1, seed=args.seed + 1)[0]
    result = runner.engine.search(query, args.epsilon)
    truth = runner.scanner.scan(query, args.epsilon, find_intervals=False)
    print(
        f"dataset={args.dataset} sequences={len(corpus)} "
        f"epsilon={args.epsilon}"
    )
    print(
        f"Phase 2 candidates: {len(result.candidates)}   "
        f"Phase 3 answers: {len(result.answers)}   "
        f"exactly relevant: {len(truth.answers)}"
    )
    print(
        f"false dismissals: {len(truth.answers - set(result.answers))} "
        f"(always 0 by Lemmas 1-3)"
    )
    for sequence_id in list(result.answers)[:5]:
        interval = result.solution_intervals[sequence_id]
        spans = ", ".join(f"[{a}:{b})" for a, b in interval.intervals[:4])
        print(f"  {sequence_id!r}: solution interval {spans}")
    print(
        f"time: method {result.stats.total_seconds * 1e3:.1f} ms, "
        f"scan {truth.seconds * 1e3:.1f} ms"
    )
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    runner.database.save(args.out)
    print(
        f"wrote {len(runner.database)} {args.dataset} sequences "
        f"({runner.database.point_count} points) to {args.out}"
    )
    return 0


_COMMANDS = {
    "sweep": _command_sweep,
    "demo": _command_demo,
    "generate": _command_generate,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
