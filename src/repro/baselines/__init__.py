"""Comparators the paper evaluates against or cites as prior work.

* :mod:`repro.baselines.sequential` — the exact sequential scan
  (ground truth and the Figure-10 timing baseline).
* :mod:`repro.baselines.keyframe` — key-frame video search, the §1
  motivation ("the search by a key frame does not guarantee correctness").
* :mod:`repro.baselines.dft` — DFT whole-sequence matching
  (Agrawal et al., reference [1]).
* :mod:`repro.baselines.stindex` — ST-index style 1-d subsequence matching
  (Faloutsos et al., reference [5]).
"""

from repro.baselines.dft import DftWholeMatcher
from repro.baselines.keyframe import KeyFrameSearch
from repro.baselines.sequential import (
    SequentialScan,
    SequentialScanResult,
    exact_range_search,
    exact_solution_interval,
)
from repro.baselines.stindex import STIndexSubsequenceMatcher

__all__ = [
    "DftWholeMatcher",
    "KeyFrameSearch",
    "STIndexSubsequenceMatcher",
    "SequentialScan",
    "SequentialScanResult",
    "exact_range_search",
    "exact_solution_interval",
]
