"""DFT whole-sequence matching (Agrawal, Faloutsos & Swami — reference [1]).

The paper's related work (§2): "They introduced the Discrete Fourier
Transform (DFT) to map time sequences to the frequency domain ... Each
sequence, whose dimensionality is reduced by using DFT, is mapped to a
lower-dimensional point in the frequency domain, and is indexed and stored
using the R* tree.  This technique, however, has a restriction that a
database sequence and a query sequence should be of equal length."

This is the F-index: an *orthonormal* DFT is an isometry, so the Euclidean
distance between the first ``fc`` coefficient pairs lower-bounds the true
Euclidean distance between the series — searching the index with the query
radius yields a candidate set with no false dismissals, which is then
post-filtered exactly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.mbr import MBR
from repro.index.rstar import RStarTree
from repro.util.validation import check_threshold

if TYPE_CHECKING:
    import numpy.typing as npt

    from repro.index.rtree import IndexStats

__all__ = ["DftWholeMatcher", "dft_features"]


def dft_features(series: np.ndarray, n_coefficients: int) -> np.ndarray:
    """The first ``n_coefficients`` orthonormal-DFT coefficients, as reals.

    The transform is ``fft(x) / sqrt(len(x))`` (unitary convention), so by
    Parseval the feature-space distance over any coefficient subset
    lower-bounds the time-domain Euclidean distance.  Real and imaginary
    parts are interleaved into a ``2 * n_coefficients`` vector.
    """
    series = np.asarray(series, dtype=np.float64).reshape(-1)
    if n_coefficients < 1:
        raise ValueError(f"n_coefficients must be >= 1, got {n_coefficients}")
    if series.size < n_coefficients:
        raise ValueError(
            f"series of length {series.size} has fewer than "
            f"{n_coefficients} coefficients"
        )
    spectrum = np.fft.fft(series) / np.sqrt(series.size)
    head = spectrum[:n_coefficients]
    features = np.empty(2 * n_coefficients)
    features[0::2] = head.real
    features[1::2] = head.imag
    return features


class DftWholeMatcher:
    """Whole-sequence matching of equal-length 1-d series via an F-index.

    Parameters
    ----------
    length:
        The common length of every stored and query series (the method's
        defining restriction).
    n_coefficients:
        DFT coefficients kept per series (feature dimension is twice this).
    max_entries:
        Node capacity of the underlying R*-tree.

    Notes
    -----
    Distances are plain Euclidean over the series values (the Agrawal et
    al. convention), not the paper's ``Dmean``; divide thresholds by
    ``sqrt(length)`` to translate between the two.
    """

    def __init__(
        self, length: int, *, n_coefficients: int = 3, max_entries: int = 16
    ) -> None:
        if length < 1:
            raise ValueError(f"length must be >= 1, got {length}")
        if n_coefficients < 1 or n_coefficients > length:
            raise ValueError(
                f"n_coefficients must be in [1, {length}], got {n_coefficients}"
            )
        self.length = length
        self.n_coefficients = n_coefficients
        self._index = RStarTree(
            dimension=2 * n_coefficients, max_entries=max_entries
        )
        self._series: dict[object, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._series)

    def add(
        self, series: npt.ArrayLike, sequence_id: object = None
    ) -> object:
        """Index one series of the configured length; returns its id."""
        values = np.asarray(series, dtype=np.float64).reshape(-1)
        if values.size != self.length:
            raise ValueError(
                f"series length {values.size} != configured length "
                f"{self.length}"
            )
        if sequence_id is None:
            sequence_id = len(self._series)
        if sequence_id in self._series:
            raise KeyError(f"sequence id {sequence_id!r} already stored")
        self._series[sequence_id] = values
        features = dft_features(values, self.n_coefficients)
        self._index.insert(MBR.of_point(features), sequence_id)
        return sequence_id

    def candidates(self, query: npt.ArrayLike, epsilon: float) -> set:
        """The index pre-filter: ids within ``epsilon`` in feature space.

        Guaranteed to be a superset of the true answers (lower-bounding
        feature distance), so the only errors are false positives.
        """
        epsilon = check_threshold(epsilon)
        values = np.asarray(query, dtype=np.float64).reshape(-1)
        if values.size != self.length:
            raise ValueError(
                f"query length {values.size} != configured length "
                f"{self.length}"
            )
        features = dft_features(values, self.n_coefficients)
        hits = self._index.search_within(MBR.of_point(features), epsilon)
        return {entry.payload for entry in hits}

    def search(self, query: npt.ArrayLike, epsilon: float) -> set:
        """Exact whole-matching: candidates post-filtered in the time domain."""
        epsilon = check_threshold(epsilon)
        values = np.asarray(query, dtype=np.float64).reshape(-1)
        answers = set()
        for sequence_id in self.candidates(values, epsilon):
            stored = self._series[sequence_id]
            if float(np.sqrt(np.sum((stored - values) ** 2))) <= epsilon:
                answers.add(sequence_id)
        return answers

    @property
    def index_stats(self) -> IndexStats:
        """Access counters of the underlying R*-tree."""
        return self._index.stats
