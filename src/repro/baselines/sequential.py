"""The sequential-scan baseline: exact answers by brute force.

Section 4 of the paper evaluates everything against the sequential scan:
it is simultaneously the *ground truth* (which sequences really fall within
``eps``; which points really belong to the solution interval of
Definition 6) and the *timing baseline* for the response-time ratio of
Figure 10.

``exact_range_search`` and ``exact_solution_interval`` are the reference
semantics; :class:`SequentialScan` wraps them with the same result shape as
:class:`~repro.core.search.SimilaritySearch` plus timing.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING
from dataclasses import dataclass, field

import numpy as np

from repro.core.distance import sliding_mean_distances
from repro.core.sequence import MultidimensionalSequence
from repro.core.solution_interval import IntervalSet
from repro.util.validation import check_threshold

if TYPE_CHECKING:
    from collections.abc import Iterable, Mapping

    import numpy.typing as npt

    from repro.core.database import SequenceDatabase

    SequenceLike = MultidimensionalSequence | npt.ArrayLike
    SequencesLike = (
        Mapping[object, SequenceLike] | Iterable[tuple[object, SequenceLike]]
    )

__all__ = [
    "SequentialScan",
    "SequentialScanResult",
    "exact_range_search",
    "exact_solution_interval",
]


def _as_mds(sequence: SequenceLike) -> MultidimensionalSequence:
    if isinstance(sequence, MultidimensionalSequence):
        return sequence
    return MultidimensionalSequence(sequence)


def exact_solution_interval(
    query: SequenceLike, sequence: SequenceLike, epsilon: float
) -> IntervalSet:
    """The exact solution interval of Definition 6.

    Every point contained in some window ``S[j : j + k]`` (``k`` the query
    length) whose ``Dmean`` to the query is at most ``epsilon``.  When the
    query is *longer* than the sequence, Definition 3 slides the sequence
    inside the query instead: the whole sequence matches or nothing does.

    Parameters
    ----------
    query, sequence:
        Sequences (or raw point arrays) of equal dimension.
    epsilon:
        The threshold.

    Returns
    -------
    IntervalSet
        Point offsets of ``sequence`` inside matching windows.
    """
    epsilon = check_threshold(epsilon)
    query = _as_mds(query)
    sequence = _as_mds(sequence)
    k = len(query)
    m = len(sequence)
    if k > m:
        distances = sliding_mean_distances(sequence, query)
        if float(distances.min()) <= epsilon:
            return IntervalSet.full(m)
        return IntervalSet()
    distances = sliding_mean_distances(query, sequence)
    spans = [
        (j, j + k)
        for j in range(distances.shape[0])
        if distances[j] <= epsilon
    ]
    return IntervalSet(spans)


def exact_range_search(
    query: SequenceLike, sequences: SequencesLike, epsilon: float
) -> set:
    """Ids of sequences with ``D(query, S) <= epsilon`` (Definitions 2-3).

    Parameters
    ----------
    query:
        The query sequence.
    sequences:
        Mapping of ``id -> sequence`` or iterable of ``(id, sequence)``.
    epsilon:
        The threshold.
    """
    epsilon = check_threshold(epsilon)
    query = _as_mds(query)
    items = sequences.items() if hasattr(sequences, "items") else sequences
    relevant = set()
    for sequence_id, sequence in items:
        sequence = _as_mds(sequence)
        if len(query) <= len(sequence):
            distances = sliding_mean_distances(query, sequence)
        else:
            distances = sliding_mean_distances(sequence, query)
        if float(distances.min()) <= epsilon:
            relevant.add(sequence_id)
    return relevant


@dataclass
class SequentialScanResult:
    """Exact answers plus the time the scan took."""

    epsilon: float
    answers: set
    solution_intervals: dict[object, IntervalSet] = field(default_factory=dict)
    seconds: float = 0.0


class SequentialScan:
    """Brute-force range search over a corpus of sequences.

    Parameters
    ----------
    sequences:
        Mapping of ``id -> sequence``; each is converted (and cached) as a
        :class:`~repro.core.sequence.MultidimensionalSequence`.

    Notes
    -----
    The scan computes the sliding ``Dmean`` of the query at *every*
    alignment of *every* sequence — exactly the work the paper's method
    avoids — and assembles exact solution intervals from the sub-threshold
    alignments.
    """

    def __init__(self, sequences: SequencesLike) -> None:
        items = sequences.items() if hasattr(sequences, "items") else sequences
        self.sequences: dict[object, MultidimensionalSequence] = {
            sequence_id: _as_mds(sequence) for sequence_id, sequence in items
        }
        if not self.sequences:
            raise ValueError("the corpus must contain at least one sequence")

    @classmethod
    def from_database(cls, database: SequenceDatabase) -> "SequentialScan":
        """Build a scan baseline over the sequences of a SequenceDatabase."""
        return cls(
            {sid: database.sequence(sid) for sid in database.ids()}
        )

    def scan(
        self,
        query: SequenceLike,
        epsilon: float,
        *,
        find_intervals: bool = True,
    ) -> SequentialScanResult:
        """Run the exact range search; optionally assemble exact intervals."""
        epsilon = check_threshold(epsilon)
        query = _as_mds(query)
        started = time.perf_counter()
        answers = set()
        intervals: dict[object, IntervalSet] = {}
        for sequence_id, sequence in self.sequences.items():
            if len(query) <= len(sequence):
                distances = sliding_mean_distances(query, sequence)
                matched = float(distances.min()) <= epsilon
                if matched and find_intervals:
                    k = len(query)
                    spans = [
                        (j, j + k)
                        for j in np.nonzero(distances <= epsilon)[0]
                    ]
                    intervals[sequence_id] = IntervalSet(spans)
            else:
                distances = sliding_mean_distances(sequence, query)
                matched = float(distances.min()) <= epsilon
                if matched and find_intervals:
                    intervals[sequence_id] = IntervalSet.full(len(sequence))
            if matched:
                answers.add(sequence_id)
        elapsed = time.perf_counter() - started
        return SequentialScanResult(
            epsilon=epsilon,
            answers=answers,
            solution_intervals=intervals,
            seconds=elapsed,
        )
