"""ST-index style 1-d subsequence matching (Faloutsos et al. — reference [5]).

The paper's own method generalises this one, so having it in-repo both
documents the lineage and provides the 1-d comparison point.  The FRM'94
pipeline:

1. A sliding window of width ``w`` runs over each data series; every window
   becomes a point whose coordinates are the first ``fc`` orthonormal-DFT
   coefficients — a *trail* in feature space.
2. Each trail is partitioned into MBRs (here with the very MCOST
   partitioner of Section 3.4.3, which the paper modified from FRM) and the
   MBRs are stored in an R-tree — the "ST-index".
3. A query of length ``l >= w`` is cut into ``p = floor(l / w)`` disjoint
   windows.  If some data subsequence matches the query within ``eps``
   (Euclidean over the full length), then at least one query window is
   within ``eps / sqrt(p)`` of its corresponding data window in feature
   space, so probing the index with the reduced radius yields candidates
   with **no false dismissals**; candidates are post-filtered exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.mbr import MBR
from repro.core.partitioning import partition_sequence
from repro.core.sequence import MultidimensionalSequence
from repro.index.rtree import RTree
from repro.util.validation import check_threshold

if TYPE_CHECKING:
    import numpy.typing as npt

    from repro.index.rtree import IndexStats

__all__ = ["STIndexSubsequenceMatcher", "SubsequenceMatch", "window_features"]


def window_features(
    series: np.ndarray, window: int, n_coefficients: int
) -> np.ndarray:
    """Feature trail: orthonormal-DFT head of every sliding window.

    Returns an array of shape ``(len(series) - window + 1, 2 * fc)``; row
    ``j`` describes ``series[j : j + window]``.
    """
    series = np.asarray(series, dtype=np.float64).reshape(-1)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if n_coefficients < 1 or 2 * n_coefficients > 2 * window:
        raise ValueError(
            f"n_coefficients must be in [1, {window}], got {n_coefficients}"
        )
    if series.size < window:
        raise ValueError(
            f"series of length {series.size} shorter than window {window}"
        )
    windows = np.lib.stride_tricks.sliding_window_view(series, window)
    spectrum = np.fft.fft(windows, axis=1) / np.sqrt(window)
    head = spectrum[:, :n_coefficients]
    features = np.empty((windows.shape[0], 2 * n_coefficients))
    features[:, 0::2] = head.real
    features[:, 1::2] = head.imag
    return features


@dataclass(frozen=True)
class SubsequenceMatch:
    """One exact subsequence hit: where, and at what Euclidean distance."""

    sequence_id: object
    offset: int
    distance: float


class STIndexSubsequenceMatcher:
    """Subsequence matching for 1-d series with an ST-index.

    Parameters
    ----------
    window:
        Sliding-window width ``w``; queries must be at least this long.
    n_coefficients:
        DFT coefficients kept per window.
    max_points:
        MCOST partitioning cap for trail MBRs.
    max_entries:
        R-tree node capacity.

    Notes
    -----
    Distances are Euclidean over raw values (the FRM convention).  Data
    series may have arbitrary lengths ``>= window``.
    """

    def __init__(
        self,
        window: int = 16,
        *,
        n_coefficients: int = 2,
        max_points: int | None = 64,
        max_entries: int = 16,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self.n_coefficients = n_coefficients
        self.max_points = max_points
        self._index = RTree(
            dimension=2 * n_coefficients, max_entries=max_entries
        )
        self._series: dict[object, np.ndarray] = {}
        #: per sequence: segment point-offset spans of the trail partition
        self._trail_segments: dict[object, list[tuple[int, int]]] = {}

    def __len__(self) -> int:
        return len(self._series)

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def add(
        self, series: npt.ArrayLike, sequence_id: object = None
    ) -> object:
        """Index one data series; returns its id."""
        values = np.asarray(series, dtype=np.float64).reshape(-1)
        if values.size < self.window:
            raise ValueError(
                f"series of length {values.size} shorter than window "
                f"{self.window}"
            )
        if sequence_id is None:
            sequence_id = len(self._series)
        if sequence_id in self._series:
            raise KeyError(f"sequence id {sequence_id!r} already stored")
        self._series[sequence_id] = values

        trail = window_features(values, self.window, self.n_coefficients)
        trail_sequence = MultidimensionalSequence(
            trail, validate_unit_cube=False
        )
        partition = partition_sequence(
            trail_sequence, max_points=self.max_points
        )
        spans = []
        for segment in partition:
            spans.append((segment.start, segment.stop))
            self._index.insert(segment.mbr, (sequence_id, segment.index))
        self._trail_segments[sequence_id] = spans
        return sequence_id

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(
        self, query: npt.ArrayLike, epsilon: float
    ) -> list[SubsequenceMatch]:
        """All exact subsequence matches within Euclidean ``epsilon``.

        Returns one :class:`SubsequenceMatch` per (sequence, offset) whose
        window ``series[offset : offset + len(query)]`` is within
        ``epsilon`` of the query.
        """
        epsilon = check_threshold(epsilon)
        values = np.asarray(query, dtype=np.float64).reshape(-1)
        if values.size < self.window:
            raise ValueError(
                f"query of length {values.size} shorter than window "
                f"{self.window}"
            )
        candidate_offsets = self._candidate_offsets(values, epsilon)
        matches = []
        query_length = values.size
        for sequence_id, offsets in sorted(
            candidate_offsets.items(), key=lambda kv: str(kv[0])
        ):
            series = self._series[sequence_id]
            for offset in sorted(offsets):
                if offset + query_length > series.size:
                    continue
                block = series[offset : offset + query_length]
                distance = float(np.sqrt(np.sum((block - values) ** 2)))
                if distance <= epsilon:
                    matches.append(
                        SubsequenceMatch(sequence_id, offset, distance)
                    )
        return matches

    def _candidate_offsets(
        self, values: np.ndarray, epsilon: float
    ) -> dict[object, set[int]]:
        """Index probes for the p disjoint query windows (FRM lemma)."""
        pieces = values.size // self.window
        radius = epsilon / np.sqrt(pieces)
        candidates: dict[object, set[int]] = {}
        for piece in range(pieces):
            start = piece * self.window
            feature = window_features(
                values[start : start + self.window],
                self.window,
                self.n_coefficients,
            )[0]
            probe = MBR.of_point(feature)
            for entry in self._index.search_within(probe, radius):
                sequence_id, segment_index = entry.payload
                span = self._trail_segments[sequence_id][segment_index]
                bucket = candidates.setdefault(sequence_id, set())
                for trail_offset in range(span[0], span[1]):
                    match_offset = trail_offset - start
                    if match_offset >= 0:
                        bucket.add(match_offset)
        return candidates

    @property
    def index_stats(self) -> IndexStats:
        """Access counters of the underlying R-tree."""
        return self._index.stats
