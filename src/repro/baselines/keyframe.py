"""Key-frame video search — the flawed baseline the paper motivates against.

Section 1: "It is usual in video search that a key frame is selected for
each shot, and a query is processed on the selected frames.  But the search
by a key frame does not guarantee the correctness since it cannot always
summarize all the frames of a shot."

This module implements exactly that scheme so the claim can be measured
(``benchmarks/bench_ablation_keyframe.py``): streams are cut into shots at
large inter-frame jumps, one representative frame per shot is kept (the
frame nearest the shot centroid), and a query matches a stream when some
query key frame lies within ``epsilon`` of some stored key frame.  Unlike
``Dmbr``/``Dnorm`` pruning this is *not* a lower-bound scheme, so it can
dismiss true answers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.sequence import MultidimensionalSequence
from repro.util.validation import check_threshold

if TYPE_CHECKING:
    import numpy.typing as npt

__all__ = ["KeyFrameSearch", "detect_shots", "select_key_frames"]


def detect_shots(points: np.ndarray, shot_threshold: float) -> list[tuple[int, int]]:
    """Cut a frame trail into shots at inter-frame jumps above a threshold.

    Returns half-open ``[start, stop)`` frame ranges covering the stream.
    """
    if shot_threshold <= 0:
        raise ValueError(f"shot_threshold must be > 0, got {shot_threshold}")
    if points.ndim != 2 or points.shape[0] == 0:
        raise ValueError("points must be a non-empty (m, n) array")
    jumps = np.sqrt(np.sum(np.diff(points, axis=0) ** 2, axis=1))
    boundaries = np.nonzero(jumps > shot_threshold)[0] + 1
    edges = [0, *boundaries.tolist(), points.shape[0]]
    return [(edges[i], edges[i + 1]) for i in range(len(edges) - 1)]


def select_key_frames(
    points: np.ndarray, shots: list[tuple[int, int]]
) -> np.ndarray:
    """One key frame per shot: the frame nearest the shot centroid."""
    keys = []
    for start, stop in shots:
        block = points[start:stop]
        centroid = block.mean(axis=0)
        nearest = int(np.argmin(np.sum((block - centroid) ** 2, axis=1)))
        keys.append(block[nearest])
    return np.array(keys)


class KeyFrameSearch:
    """Shot-based key-frame retrieval over a corpus of streams.

    Parameters
    ----------
    shot_threshold:
        Inter-frame distance above which a shot boundary is declared.

    Notes
    -----
    ``search`` returns stream ids whose key-frame set approaches the
    query's key-frame set within ``epsilon``.  The scheme is fast but
    *incorrect by design* — measuring its false dismissals against the
    sequential scan reproduces the paper's motivating claim.
    """

    def __init__(self, *, shot_threshold: float = 0.15) -> None:
        if shot_threshold <= 0:
            raise ValueError(
                f"shot_threshold must be > 0, got {shot_threshold}"
            )
        self.shot_threshold = shot_threshold
        self._key_frames: dict[object, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._key_frames)

    def add(
        self,
        sequence: MultidimensionalSequence | npt.ArrayLike,
        sequence_id: object = None,
    ) -> object:
        """Extract and store the key frames of one stream; returns its id."""
        if not isinstance(sequence, MultidimensionalSequence):
            sequence = MultidimensionalSequence(sequence)
        if sequence_id is None:
            sequence_id = sequence.sequence_id
        if sequence_id is None:
            sequence_id = len(self._key_frames)
        if sequence_id in self._key_frames:
            raise KeyError(f"sequence id {sequence_id!r} already stored")
        shots = detect_shots(sequence.points, self.shot_threshold)
        self._key_frames[sequence_id] = select_key_frames(
            sequence.points, shots
        )
        return sequence_id

    def key_frames(self, sequence_id: object) -> np.ndarray:
        """The stored key frames of one stream."""
        try:
            return self._key_frames[sequence_id]
        except KeyError:
            raise KeyError(f"unknown sequence id {sequence_id!r}") from None

    def search(
        self, query: MultidimensionalSequence | npt.ArrayLike, epsilon: float
    ) -> set:
        """Stream ids with a key frame within ``epsilon`` of a query key frame."""
        epsilon = check_threshold(epsilon)
        if not isinstance(query, MultidimensionalSequence):
            query = MultidimensionalSequence(query)
        query_keys = select_key_frames(
            query.points, detect_shots(query.points, self.shot_threshold)
        )
        matches = set()
        for sequence_id, keys in self._key_frames.items():
            # (q, k) pairwise distances between key-frame sets.
            diff = query_keys[:, None, :] - keys[None, :, :]
            distances = np.sqrt(np.sum(diff * diff, axis=2))
            if float(distances.min()) <= epsilon:
                matches.add(sequence_id)
        return matches
