"""Typed errors of the query-serving subsystem.

Admission control and deadlines need errors a caller (or the HTTP layer)
can dispatch on without string matching: an overloaded engine fast-fails
with :class:`Overloaded` (HTTP 429, carrying a ``retry_after`` hint), an
expired request raises :class:`DeadlineExceeded` (HTTP 504; clients also
parse the legacy 408 for one release), operations against a closed
engine raise :class:`EngineClosed` (HTTP 503), and a client whose
circuit breaker is open fast-fails locally with :class:`CircuitOpen` —
no bytes hit the wire.  A client whose retry token bucket ran dry raises
:class:`RetryBudgetExhausted` instead of amplifying load with another
attempt.  All inherit :class:`ServiceError`, so ``except ServiceError``
catches exactly the serving-layer failure modes and nothing from the
search itself.

Replication adds its own failure vocabulary: a follower whose history no
longer matches its leader raises :class:`ReplicaDiverged` (HTTP 409), one
whose cursor fell behind the leader's WAL horizon gets
:class:`SnapshotRequired` (HTTP 410 — the tail is *gone*, not merely
busy), a repair journal at capacity raises :class:`RepairOverflow`
(HTTP 503) and a follower-mode server rejects direct writes with
:class:`FollowerReadOnly` (HTTP 403).
"""

from __future__ import annotations

from collections.abc import Iterable

__all__ = [
    "CircuitOpen",
    "DeadlineExceeded",
    "EngineClosed",
    "FollowerReadOnly",
    "Overloaded",
    "RepairOverflow",
    "ReplicaDiverged",
    "RetryBudgetExhausted",
    "ServiceError",
    "ShardUnavailable",
    "SnapshotRequired",
    "WriteQuorumFailed",
]


class ServiceError(RuntimeError):
    """Base class of all serving-layer failures."""


class Overloaded(ServiceError):
    """The request was rejected by admission control (queue at capacity).

    Raised *before* any work is queued, so the caller can retry with
    backoff knowing the request consumed (almost) no server resources.
    Also raised for writes (and, in cache-only mode, search misses) shed
    by a degraded engine.
    """

    def __init__(
        self,
        message: str,
        *,
        queue_depth: int,
        capacity: int,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        #: Requests queued or running when the rejection happened.
        self.queue_depth = queue_depth
        #: The admission limit (workers + queue slots).
        self.capacity = capacity
        #: Server-suggested backoff in seconds (the 429 Retry-After header).
        self.retry_after = retry_after


class DeadlineExceeded(ServiceError):
    """The request's deadline expired while queued or executing."""

    def __init__(self, message: str, *, timeout: float) -> None:
        super().__init__(message)
        #: The deadline the request carried, in seconds.
        self.timeout = timeout


class EngineClosed(ServiceError):
    """The engine has been shut down; no further requests are accepted."""


class ShardUnavailable(ServiceError):
    """Every replica of at least one shard refused or failed the request.

    Raised by cluster operations that *fail closed* (``knn`` by default:
    its contract — "the global k nearest" — cannot be met with a shard
    missing).  Range ``search`` degrades instead, returning a typed
    partial result with ``complete=False`` and the same shard list.
    """

    def __init__(
        self, message: str, *, missing_shards: Iterable[int]
    ) -> None:
        super().__init__(message)
        #: The shards whose every replica was unavailable, ascending.
        self.missing_shards: tuple[int, ...] = tuple(sorted(missing_shards))


class WriteQuorumFailed(ServiceError):
    """A cluster write reached fewer replicas than its quorum.

    Replicas that did acknowledge keep the write and the missed replicas
    are queued for read-repair, so a quorum failure means "not yet
    durable on a majority", not "rolled back" — the caller may retry
    idempotently or wait for repair to converge.
    """

    def __init__(
        self, message: str, *, shard: int, acks: int, required: int
    ) -> None:
        super().__init__(message)
        #: The shard whose replica set was written.
        self.shard = shard
        #: Replicas that acknowledged the write.
        self.acks = acks
        #: The quorum (majority of the replication factor).
        self.required = required


class ReplicaDiverged(ServiceError):
    """A follower's replication handshake no longer matches its leader.

    Raised when the ``(snapshot_version, applied_seq)`` pair a follower
    presents is impossible against the leader's WAL — a cursor *ahead* of
    the leader's ``last_seq``, or a snapshot version newer than the
    leader's own.  Divergence means the follower applied history the
    leader never wrote (or the leader lost history), so tailing further
    would compound the split; the only safe recovery is a full snapshot
    resync.
    """

    def __init__(
        self,
        message: str,
        *,
        leader_seq: int,
        follower_seq: int,
    ) -> None:
        super().__init__(message)
        #: The leader's last stamped WAL seq at handshake time.
        self.leader_seq = leader_seq
        #: The applied seq the follower presented.
        self.follower_seq = follower_seq


class SnapshotRequired(ServiceError):
    """The requested WAL tail was truncated away by a checkpoint.

    A follower asking for records after ``after_seq`` when the leader's
    :meth:`~repro.service.wal.WriteAheadLog.horizon` has moved past it
    cannot catch up by tailing — the records are gone.  The follower must
    fall back to a full snapshot resync, then resume tailing from the
    leader's reported position.
    """

    def __init__(
        self,
        message: str,
        *,
        horizon: int,
        after_seq: int,
    ) -> None:
        super().__init__(message)
        #: The oldest seq still shippable from the leader's WAL.
        self.horizon = horizon
        #: The cursor the follower asked to tail from.
        self.after_seq = after_seq


class RepairOverflow(ServiceError):
    """A backend's repair queue hit ``max_repair_ops``.

    Queuing more per-op repairs for a long-dead replica only grows the
    journal without bound; past the cap the queue is discarded and the
    replica is marked for a full snapshot resync instead — the overflow
    converts "replay every missed write" into "copy the state once".
    """

    def __init__(
        self,
        message: str,
        *,
        backend: int,
        pending: int,
        capacity: int,
    ) -> None:
        super().__init__(message)
        #: The backend whose queue overflowed.
        self.backend = backend
        #: Ops queued when the overflow happened.
        self.pending = pending
        #: The ``max_repair_ops`` bound.
        self.capacity = capacity


class FollowerReadOnly(ServiceError):
    """A write was sent to a server running in follower mode.

    Followers apply mutations only through log shipping; accepting a
    direct write would fork their history from the leader's WAL and
    surface later as :class:`ReplicaDiverged`.  The client should write
    to the leader instead.
    """

    def __init__(self, message: str, *, leader: str | None = None) -> None:
        super().__init__(message)
        #: The leader URL this follower tails, when known.
        self.leader = leader


class RetryBudgetExhausted(ServiceError):
    """The client's retry token bucket is empty; the retry was not sent.

    Retries amplify traffic exactly when the server can least afford it —
    a fleet of clients each multiplying its load by ``max_attempts`` is
    what turns a brownout into an outage.  The token bucket bounds that
    amplification; when it runs dry the failed attempt that would have
    been retried is chained as ``__cause__`` instead of replayed.
    """

    def __init__(
        self, message: str, *, tokens: float, capacity: float
    ) -> None:
        super().__init__(message)
        #: Tokens left in the bucket (below 1.0 whenever this is raised).
        self.tokens = tokens
        #: The bucket's maximum token count.
        self.capacity = capacity


class CircuitOpen(ServiceError):
    """The client's circuit breaker is open; the request was not sent.

    Raised locally after repeated transport-level failures; the breaker
    half-opens after ``retry_after`` seconds and probes the server once.
    """

    def __init__(
        self, message: str, *, retry_after: float | None = None
    ) -> None:
        super().__init__(message)
        #: Seconds until the breaker half-opens and allows a probe.
        self.retry_after = retry_after
