"""Adaptive admission control: an AIMD concurrency limit with priorities.

The engine used to admit a static ``workers + queue_cap`` requests and
reject the rest.  That cap is right only at one operating point: when
requests are cheap the queue could safely be deeper, and when they are
expensive even a half-full queue already means seconds of wait.  What
admission control actually defends is **queue wait** — time a request
spends admitted but not executing — so this module regulates the limit
on the signal itself:

* **AIMD on observed queue wait.**  Every dequeue reports how long the
  request waited.  Waits at or under ``target_queue_wait`` grow the
  limit additively (``+increase/limit`` per observation, concave like
  TCP); a wait over target shrinks it multiplicatively (``x decrease``),
  at most once per ``cooldown`` so one burst does not collapse the
  window.  The limit always stays inside ``[min_limit, max_limit]`` —
  the floor keeps the worker pool itself reachable, the ceiling is the
  old static cap as a safety bound.
* **Priority headroom.**  Not all traffic deserves the last admission
  slot.  Reads may fill the whole limit; writes are shed once usage
  crosses 75 % of it; repair/replication traffic (WAL tailing, record
  application, restores) sheds at 50 %.  Under pressure the engine
  degrades in the order that preserves client-visible reads longest —
  the same ordering the degraded mode machinery applies, now fed by a
  load signal instead of a consecutive-429 strike counter alone.

Reads *hold a slot* (``acquire``/``release``) because they occupy the
worker pool; writes and repair traffic execute on their caller's thread
serialised by the engine's write lock, so they only consult the gate
(``permits``) without consuming a slot.
"""

from __future__ import annotations

import time
from collections import Counter

from repro.service.stats import LatencyWindow
from repro.util.sync import TracedLock

__all__ = ["PRIORITIES", "AdaptiveLimiter"]

#: Admission priority classes, highest first.
PRIORITIES: tuple[str, ...] = ("read", "write", "repair")

#: Fraction of the current limit each class may fill before shedding.
_HEADROOM: dict[str, float] = {"read": 1.0, "write": 0.75, "repair": 0.5}


class AdaptiveLimiter:
    """The engine's admission gate: AIMD limit plus priority headroom.

    Parameters
    ----------
    min_limit:
        Lower bound of the adaptive limit (typically the worker count:
        below it the pool itself would idle).
    max_limit:
        Upper bound (the old static ``workers + queue_cap``).
    target_queue_wait:
        The queue-wait target in seconds the limit converges to hold;
        ``None`` disables adaptation and pins the limit at ``max_limit``
        (the legacy static behaviour).
    increase / decrease:
        AIMD coefficients: additive growth per good observation
        (``increase / limit``) and the multiplicative factor applied on
        an over-target observation.
    cooldown:
        Minimum seconds between multiplicative decreases, so a single
        burst's worth of queued requests counts as one congestion
        signal, not ten.
    """

    def __init__(
        self,
        *,
        min_limit: int,
        max_limit: int,
        target_queue_wait: float | None = 0.1,
        increase: float = 1.0,
        decrease: float = 0.9,
        cooldown: float | None = None,
    ) -> None:
        if min_limit < 1:
            raise ValueError(f"min_limit must be >= 1, got {min_limit}")
        if max_limit < min_limit:
            raise ValueError(
                f"max_limit must be >= min_limit ({min_limit}), got {max_limit}"
            )
        if target_queue_wait is not None and target_queue_wait <= 0:
            raise ValueError(
                f"target_queue_wait must be positive or None, got "
                f"{target_queue_wait}"
            )
        if not 0.0 < decrease < 1.0:
            raise ValueError(f"decrease must be in (0, 1), got {decrease}")
        if increase <= 0:
            raise ValueError(f"increase must be positive, got {increase}")
        self.min_limit = min_limit
        self.max_limit = max_limit
        self.target_queue_wait = target_queue_wait
        self.increase = increase
        self.decrease = decrease
        if cooldown is None:
            cooldown = target_queue_wait if target_queue_wait else 0.0
        self.cooldown = max(0.0, cooldown)
        self._lock = TracedLock("engine.admission")
        # The limit adapts as a float so additive growth below one slot
        # per observation still accumulates; the effective limit is its
        # floor.  Starts at the ceiling: the first congestion signal
        # shrinks it, matching the optimistic start of the static cap.
        self._limit = float(max_limit)
        self._inflight = 0
        self._waits = LatencyWindow(1024)
        self._last_decrease = 0.0
        self._shed: Counter[str] = Counter()

    # ------------------------------------------------------------------
    # Gating
    # ------------------------------------------------------------------
    def effective_limit(self) -> int:
        """The current integral admission limit."""
        with self._lock:
            return self._effective()

    def _effective(self) -> int:
        if self.target_queue_wait is None:
            return self.max_limit
        return max(self.min_limit, int(self._limit))

    def _threshold(self, priority: str) -> int:
        headroom = _HEADROOM[priority]
        effective = self._effective()
        if headroom >= 1.0:
            return effective
        # Lower-priority classes keep at least one slot of headroom so a
        # tiny limit does not starve writes outright on an idle engine.
        return max(1, int(effective * headroom))

    def acquire(self, priority: str = "read") -> int | None:
        """Claim one slot; returns the pre-admission depth, or ``None``.

        ``None`` means the request must be shed: usage already reached
        the class's share of the current limit.
        """
        if priority not in _HEADROOM:
            raise ValueError(f"unknown priority {priority!r}")
        with self._lock:
            if self._inflight >= self._threshold(priority):
                self._shed[priority] += 1
                return None
            depth_before = self._inflight
            self._inflight += 1
            return depth_before

    def release(self) -> None:
        """Return one slot claimed by :meth:`acquire`."""
        with self._lock:
            self._inflight -= 1

    def permits(self, priority: str) -> bool:
        """Whether non-slot traffic of ``priority`` may proceed now.

        The gate for work that runs outside the worker pool (writes,
        repair/replication): it checks the class's headroom against the
        pool's current usage without claiming a slot.
        """
        if priority not in _HEADROOM:
            raise ValueError(f"unknown priority {priority!r}")
        with self._lock:
            if self._inflight >= self._threshold(priority):
                self._shed[priority] += 1
                return False
            return True

    @property
    def inflight(self) -> int:
        """Slots currently held (the engine's queue depth)."""
        with self._lock:
            return self._inflight

    # ------------------------------------------------------------------
    # Adaptation
    # ------------------------------------------------------------------
    def observe(self, queue_wait: float) -> None:
        """Feed one observed queue wait (seconds) into the AIMD loop."""
        if queue_wait < 0:
            queue_wait = 0.0
        target = self.target_queue_wait
        with self._lock:
            self._waits.record(queue_wait)
            if target is None:
                return
            if queue_wait > target:
                now = time.monotonic()
                if now - self._last_decrease >= self.cooldown:
                    self._limit = max(
                        float(self.min_limit), self._limit * self.decrease
                    )
                    self._last_decrease = now
            else:
                self._limit = min(
                    float(self.max_limit),
                    self._limit + self.increase / max(1.0, self._limit),
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Gauges for ``/stats``: limit, usage, waits, per-class sheds."""
        with self._lock:
            target = self.target_queue_wait
            return {
                "limit": self._effective(),
                "min_limit": self.min_limit,
                "max_limit": self.max_limit,
                "adaptive": target is not None,
                "target_queue_wait_ms": (
                    None if target is None else target * 1e3
                ),
                "inflight": self._inflight,
                "queue_wait_ms": {
                    "p50": self._waits.quantile(0.50) * 1e3,
                    "p95": self._waits.quantile(0.95) * 1e3,
                    "p99": self._waits.quantile(0.99) * 1e3,
                    "window": len(self._waits),
                },
                "shed_by_priority": dict(self._shed),
            }
