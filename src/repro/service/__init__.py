"""Concurrent query serving over the paper's three-phase search.

The :mod:`repro.core` layer answers one query at a time against a mutable
database; this package turns it into a long-lived, thread-safe serving
subsystem:

* :mod:`repro.service.engine` — the :class:`QueryEngine`: copy-on-write
  snapshot isolation (lock-free readers, serialised writers), a bounded
  worker pool with admission control and per-request deadlines.
* :mod:`repro.service.cache` — the ε-aware LRU result cache: a result
  computed at ε' exactly answers any request at ε <= ε' by re-running only
  Phase 3 over the cached candidates (lower-bound monotonicity,
  Lemmas 1-3); writes patch affected sequence ids instead of flushing.
* :mod:`repro.service.stats` — per-engine request counts, p50/p95/p99
  latency, cache hit ratio, queue depth, rejections.
* :mod:`repro.service.http` / :mod:`repro.service.client` — a stdlib-only
  HTTP JSON endpoint (``python -m repro serve``) and its client.
* :mod:`repro.service.errors` — typed serving failures (:class:`Overloaded`,
  :class:`DeadlineExceeded`, :class:`EngineClosed`).

Embedded use::

    from repro.service import QueryEngine

    with QueryEngine(db, workers=4) as engine:
        result = engine.search(query_points, epsilon=0.5)

Served use::

    $ python -m repro serve --corpus corpus.npz --workers 8
"""

from repro.service.cache import CacheEntry, EpsilonCache, query_fingerprint
from repro.service.client import ServiceClient
from repro.service.engine import QueryEngine, ServiceResponse
from repro.service.errors import (
    DeadlineExceeded,
    EngineClosed,
    Overloaded,
    ServiceError,
)
from repro.service.http import ServiceServer, serve
from repro.service.stats import LatencyWindow, ServiceStats

__all__ = [
    "CacheEntry",
    "DeadlineExceeded",
    "EngineClosed",
    "EpsilonCache",
    "LatencyWindow",
    "Overloaded",
    "QueryEngine",
    "ServiceClient",
    "ServiceError",
    "ServiceResponse",
    "ServiceServer",
    "ServiceStats",
    "query_fingerprint",
    "serve",
]
