"""Concurrent query serving over the paper's three-phase search.

The :mod:`repro.core` layer answers one query at a time against a mutable
database; this package turns it into a long-lived, thread-safe serving
subsystem:

* :mod:`repro.service.engine` — the :class:`QueryEngine`: copy-on-write
  snapshot isolation (lock-free readers, serialised writers), a bounded
  worker pool with admission control and per-request deadlines.
* :mod:`repro.service.cache` — the ε-aware LRU result cache: a result
  computed at ε' exactly answers any request at ε <= ε' by re-running only
  Phase 3 over the cached candidates (lower-bound monotonicity,
  Lemmas 1-3); writes patch affected sequence ids instead of flushing.
* :mod:`repro.service.stats` — per-engine request counts, p50/p95/p99
  latency, cache hit ratio, queue depth, rejections.
* :mod:`repro.service.wal` — durability: a checksummed, fsynced
  write-ahead log with torn-tail recovery, idempotent replay, and the
  :class:`DurabilityConfig` that turns the engine crash-safe (WAL before
  acknowledge, checkpoint = atomic snapshot save + log reset).
* :mod:`repro.service.http` / :mod:`repro.service.client` — a stdlib-only
  HTTP JSON endpoint (``python -m repro serve``) with graceful drain on
  shutdown, and a client with optional :class:`RetryPolicy` (full-jitter
  backoff honouring ``Retry-After``, idempotent reads only) and
  :class:`CircuitBreaker`.
* :mod:`repro.service.errors` — typed serving failures (:class:`Overloaded`,
  :class:`DeadlineExceeded`, :class:`EngineClosed`, :class:`CircuitOpen`).
* :mod:`repro.service.follower` — WAL log-shipping replication: a
  :class:`WalFollower` tails a leader's ``/wal/tail``, verifies CRCs,
  replays idempotently and persists its applied cursor durably, so a
  killed replica resumes from where it stopped (or snapshot-resyncs when
  its cursor fell behind the leader's WAL horizon).
* :mod:`repro.service.faults` — deterministic fault injection at named
  sites (``REPRO_FAULTS`` / :func:`fault_plan`), so chaos tests can prove
  the recovery invariants instead of asserting them.

Embedded use::

    from repro.service import DurabilityConfig, QueryEngine

    with QueryEngine(
        db, workers=4, durability=DurabilityConfig("./data")
    ) as engine:
        result = engine.search(query_points, epsilon=0.5)

Served use::

    $ python -m repro serve --corpus corpus.npz --data-dir ./data --workers 8
"""

from repro.service.cache import CacheEntry, EpsilonCache, query_fingerprint
from repro.service.client import CircuitBreaker, RetryPolicy, ServiceClient
from repro.service.engine import QueryEngine, ServiceResponse
from repro.service.errors import (
    CircuitOpen,
    DeadlineExceeded,
    EngineClosed,
    FollowerReadOnly,
    Overloaded,
    RepairOverflow,
    ReplicaDiverged,
    ServiceError,
    ShardUnavailable,
    SnapshotRequired,
    WriteQuorumFailed,
)
from repro.service.faults import FaultRule, fault_plan
from repro.service.follower import ReplicationLeader, WalFollower
from repro.service.http import ServiceServer, serve, shutdown_gracefully
from repro.service.stats import LatencyWindow, ServiceStats
from repro.service.wal import (
    DurabilityConfig,
    WalEntryInfo,
    WalInspection,
    WalRecord,
    WriteAheadLog,
    decode_frames,
    encode_frames,
    inspect_wal,
    replay_into,
)

__all__ = [
    "CacheEntry",
    "CircuitBreaker",
    "CircuitOpen",
    "DeadlineExceeded",
    "DurabilityConfig",
    "EngineClosed",
    "EpsilonCache",
    "FaultRule",
    "FollowerReadOnly",
    "LatencyWindow",
    "Overloaded",
    "QueryEngine",
    "RepairOverflow",
    "ReplicaDiverged",
    "ReplicationLeader",
    "RetryPolicy",
    "ServiceClient",
    "ServiceError",
    "ServiceResponse",
    "ServiceServer",
    "ServiceStats",
    "ShardUnavailable",
    "SnapshotRequired",
    "WalEntryInfo",
    "WalFollower",
    "WalInspection",
    "WalRecord",
    "WriteQuorumFailed",
    "WriteAheadLog",
    "decode_frames",
    "encode_frames",
    "fault_plan",
    "inspect_wal",
    "query_fingerprint",
    "replay_into",
    "serve",
    "shutdown_gracefully",
]
