"""Per-engine serving metrics: request counts, latency quantiles, cache.

A production query engine is judged by its tail latency and its rejection
rate, not by any single call — :class:`ServiceStats` is the thread-safe
accounting block every :class:`~repro.service.engine.QueryEngine` carries.
Latencies go into a fixed-size ring (:class:`LatencyWindow`), so p50/p95/p99
reflect the recent window rather than the whole process lifetime, and the
whole block renders to a plain dict for the ``/stats`` endpoint.
"""

from __future__ import annotations

import math
from collections import Counter

from repro.util.sync import TracedLock

__all__ = ["LatencyWindow", "ServiceStats"]

#: Cache-outcome labels recorded by the engine.
_CACHE_OUTCOMES = ("hit", "refine", "miss", "off")


class LatencyWindow:
    """A ring buffer of recent request latencies with quantile queries."""

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._values: list[float] = []
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._values)

    def record(self, seconds: float) -> None:
        """Add one latency observation (overwrites the oldest when full).

        Non-finite observations are rejected: one NaN in the ring would
        make every quantile NaN for the rest of the window's life (NaN
        sorts unpredictably), silently poisoning ``/stats`` and every
        trajectory stamped from it.
        """
        if not math.isfinite(seconds):
            raise ValueError(
                f"latency must be finite, got {seconds!r}"
            )
        if len(self._values) < self.capacity:
            self._values.append(seconds)
        else:
            self._values[self._cursor] = seconds
            self._cursor = (self._cursor + 1) % self.capacity

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (nearest-rank) of the window; 0.0 if empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        rank = max(0, math.ceil(q * len(ordered)) - 1)
        return ordered[rank]


class ServiceStats:
    """Thread-safe metrics block of one query engine.

    All mutators take the internal lock; :meth:`snapshot` returns a plain
    JSON-serialisable dict, so readers never hold references into live
    state.
    """

    def __init__(self, *, latency_window: int = 2048) -> None:
        self._lock = TracedLock("service.stats")
        self._requests: Counter[str] = Counter()
        self._failures: Counter[str] = Counter()
        self._cache: Counter[str] = Counter()
        self._latency = LatencyWindow(latency_window)
        self._rejected_overload = 0
        self._deadline_exceeded = 0
        self._snapshots_published = 0
        self._cache_patches = 0
        self._completed = 0
        self._shed: Counter[str] = Counter()
        self._degraded_entered = 0
        self._degraded_exited = 0
        self._wal_appends = 0
        self._wasted_work = 0
        self._cancelled = 0

    # ------------------------------------------------------------------
    # Recording (called by the engine)
    # ------------------------------------------------------------------
    def record_request(self, op: str) -> None:
        """Count one admitted request of kind ``op``."""
        with self._lock:
            self._requests[op] += 1

    def record_completed(self, op: str, seconds: float) -> None:
        """Count one successful completion and its latency."""
        with self._lock:
            self._completed += 1
            self._latency.record(seconds)

    def record_failure(self, op: str) -> None:
        """Count one request that raised out of the search itself."""
        with self._lock:
            self._failures[op] += 1

    def record_overloaded(self) -> None:
        """Count one admission-control rejection."""
        with self._lock:
            self._rejected_overload += 1

    def record_deadline_exceeded(self) -> None:
        """Count one request whose deadline expired."""
        with self._lock:
            self._deadline_exceeded += 1

    def record_wasted_work(self) -> None:
        """Count one request that *completed* after its deadline anyway.

        Every unit here is CPU the engine burned producing an answer no
        caller was still waiting for — the quantity cooperative
        cancellation checkpoints exist to drive toward zero.
        """
        with self._lock:
            self._wasted_work += 1

    def record_cancelled(self) -> None:
        """Count one request stopped mid-scan by a cancellation checkpoint."""
        with self._lock:
            self._cancelled += 1

    def record_cache(self, outcome: str) -> None:
        """Count one cache outcome: hit / refine / miss / off."""
        if outcome not in _CACHE_OUTCOMES:
            raise ValueError(
                f"cache outcome must be one of {_CACHE_OUTCOMES}, got "
                f"{outcome!r}"
            )
        with self._lock:
            self._cache[outcome] += 1

    def record_snapshot_published(self) -> None:
        """Count one copy-on-write snapshot swap (a write)."""
        with self._lock:
            self._snapshots_published += 1

    def record_shed(self, op: str) -> None:
        """Count one request shed by the degraded engine."""
        with self._lock:
            self._shed[op] += 1

    def record_degraded(self, entered: bool) -> None:
        """Count one degraded-mode transition (entered or exited)."""
        with self._lock:
            if entered:
                self._degraded_entered += 1
            else:
                self._degraded_exited += 1

    def record_wal_append(self) -> None:
        """Count one durable write-ahead-log append."""
        with self._lock:
            self._wal_appends += 1

    def record_cache_patches(self, count: int) -> None:
        """Count cache entries re-examined after a write."""
        with self._lock:
            self._cache_patches += count

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """All counters and quantiles as a JSON-serialisable dict."""
        with self._lock:
            hits = self._cache["hit"] + self._cache["refine"]
            lookups = hits + self._cache["miss"]
            return {
                "requests": dict(self._requests),
                "requests_total": sum(self._requests.values()),
                "completed": self._completed,
                "failures": dict(self._failures),
                "rejected_overload": self._rejected_overload,
                "deadline_exceeded": self._deadline_exceeded,
                "wasted_work": self._wasted_work,
                "cancelled": self._cancelled,
                "latency_ms": {
                    "p50": self._latency.quantile(0.50) * 1e3,
                    "p95": self._latency.quantile(0.95) * 1e3,
                    "p99": self._latency.quantile(0.99) * 1e3,
                    "window": len(self._latency),
                },
                "cache": {
                    "hits": self._cache["hit"],
                    "refines": self._cache["refine"],
                    "misses": self._cache["miss"],
                    "bypassed": self._cache["off"],
                    "hit_ratio": (hits / lookups) if lookups else 0.0,
                    "patches": self._cache_patches,
                },
                "snapshots_published": self._snapshots_published,
                "shed": dict(self._shed),
                "degraded_transitions": {
                    "entered": self._degraded_entered,
                    "exited": self._degraded_exited,
                },
                "wal_appends": self._wal_appends,
            }
