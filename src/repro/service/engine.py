"""The concurrent query engine: snapshots, worker pool, ε-aware cache.

This is the long-lived serving harness around the paper's three-phase
search.  Three mechanisms make it safe and fast under concurrent traffic:

**Snapshot isolation.**  The engine never mutates a published
:class:`~repro.core.database.SequenceDatabase`.  A write (insert / append /
remove) takes the single writer lock, clones the current database
copy-on-write (:meth:`SequenceDatabase.clone` — partitions shared, index
structurally copied), applies the mutation to the private clone,
materialises its index, and atomically swaps the engine's snapshot
reference.  Readers grab the snapshot reference once per request and run
entirely against it: no reader locks on the hot path, and an in-flight
search finishes on the snapshot it started with (readers-never-block-
writers, writers-never-tear-readers).

**Admission control and deadlines.**  Requests execute on a bounded worker
pool.  At most ``workers + queue_cap`` requests may be admitted at once;
beyond that the engine fast-fails with :class:`~repro.service.errors.
Overloaded` instead of building an unbounded backlog.  Each request may
carry a deadline; one that expires while queued is never executed, and one
that expires mid-execution returns :class:`~repro.service.errors.
DeadlineExceeded` to the caller (the worker finishes and its result is
discarded — cooperative cancellation, the admission slot is held until
then).

**ε-aware caching.**  Completed range searches populate an LRU keyed by
query fingerprint (:mod:`repro.service.cache`).  A request at threshold ε
served by an entry computed at ε' >= ε skips Phases 1-2 entirely and
re-runs only Phase 3 over the cached candidate set — exact by the
lower-bound monotonicity of Lemmas 1-3.  Writes patch affected sequence
ids in place rather than flushing the cache.

The only intentional cross-thread mutation on the read path is the index's
access-counter block (``index.stats``), whose increments may race benignly
under concurrent readers; treat per-engine node-access counts as
approximate.  Use :func:`repro.core.contracts.checking_contracts` via the
``REPRO_CHECK_CONTRACTS`` environment variable to have every served
result — cached or not — re-validated against the no-false-dismissal
contract.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, TypeVar

from repro.analysis.tracing import search_record
from repro.core.contracts import contracts_enabled
from repro.core.database import SequenceDatabase
from repro.core.search import SearchResult, SearchStats, SimilaritySearch
from repro.core.sequence import MultidimensionalSequence
from repro.core.solution_interval import IntervalSet
from repro.service.cache import CacheEntry, EpsilonCache, query_fingerprint
from repro.service.errors import DeadlineExceeded, EngineClosed, Overloaded
from repro.service.stats import ServiceStats
from repro.util.validation import check_threshold

if TYPE_CHECKING:
    import numpy.typing as npt

    SequenceLike = MultidimensionalSequence | npt.ArrayLike

__all__ = ["QueryEngine", "ServiceResponse"]

_T = TypeVar("_T")

#: Two thresholds closer than this are served as an exact cache hit.
_EPSILON_MATCH_TOLERANCE = 1e-12


@dataclass(frozen=True)
class _Snapshot:
    """One immutable published state: a database, its engine, a version."""

    database: SequenceDatabase
    search: SimilaritySearch
    version: int


@dataclass(frozen=True)
class ServiceResponse:
    """A search result plus its serving metadata."""

    result: SearchResult
    #: Cache outcome: ``"hit"``, ``"refine"``, ``"miss"`` or ``"off"``.
    cache: str
    #: The snapshot version the request executed against.
    snapshot_version: int


class QueryEngine:
    """A thread-safe serving engine over a :class:`SequenceDatabase`.

    The engine takes ownership of the database: do not mutate it directly
    after construction — go through :meth:`insert` / :meth:`append` /
    :meth:`remove`, which publish copy-on-write snapshots.

    Parameters
    ----------
    database:
        The corpus to serve.  Its index is materialised eagerly so the
        first request never pays construction cost.
    workers:
        Worker-thread count executing requests.
    queue_cap:
        Requests allowed to wait beyond the running ones; an arrival that
        finds ``workers + queue_cap`` requests admitted is rejected with
        :class:`Overloaded`.
    cache_size:
        ε-aware result-cache capacity (entries); ``0`` disables caching.
    default_timeout:
        Deadline (seconds) applied to requests that do not carry their
        own; ``None`` means no deadline.
    trace_path:
        Optional JSON-lines trace file; every completed range search
        appends one record in the :func:`repro.analysis.tracing.
        search_record` schema plus ``op``/``cache``/``snapshot_version``
        fields, readable with :func:`repro.analysis.tracing.read_trace`.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.database import SequenceDatabase
    >>> db = SequenceDatabase(dimension=2)
    >>> _ = db.add(np.random.default_rng(0).random((30, 2)), sequence_id="a")
    >>> with QueryEngine(db, workers=2) as engine:
    ...     result = engine.search(np.random.default_rng(1).random((8, 2)), 0.5)
    ...     isinstance(result.answers, list)
    True
    """

    def __init__(
        self,
        database: SequenceDatabase,
        *,
        workers: int = 4,
        queue_cap: int = 64,
        cache_size: int = 128,
        default_timeout: float | None = None,
        trace_path: str | Path | None = None,
    ) -> None:
        if not isinstance(database, SequenceDatabase):
            raise TypeError(
                f"expected a SequenceDatabase, got {type(database).__name__}"
            )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_cap < 0:
            raise ValueError(f"queue_cap must be >= 0, got {queue_cap}")
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        if default_timeout is not None and default_timeout <= 0:
            raise ValueError(
                f"default_timeout must be positive, got {default_timeout}"
            )
        self._materialise(database)
        self.workers = workers
        self.queue_cap = queue_cap
        self.default_timeout = default_timeout
        self._snapshot = _Snapshot(database, SimilaritySearch(database), 0)
        self._write_lock = threading.Lock()
        self._capacity = workers + queue_cap
        self._admission = threading.Semaphore(self._capacity)
        self._pending = 0
        self._pending_lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._cache = EpsilonCache(cache_size) if cache_size else None
        self._stats = ServiceStats()
        self._trace_path = None if trace_path is None else Path(trace_path)
        self._trace_lock = threading.Lock()
        self._closed = False
        self._started_at = time.time()

    @staticmethod
    def _materialise(database: SequenceDatabase) -> None:
        """Force the index build so readers never trigger (racy) rebuilds."""
        if len(database.index) != database.segment_count:
            raise RuntimeError(
                f"index holds {len(database.index)} entries for "
                f"{database.segment_count} segments — inconsistent database"
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, *, wait: bool = True) -> None:
        """Stop accepting requests and shut the worker pool down."""
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    @property
    def dimension(self) -> int:
        """Dimensionality of the served corpus."""
        return self._snapshot.database.dimension

    @property
    def snapshot_version(self) -> int:
        """Version counter of the currently published snapshot."""
        return self._snapshot.version

    @property
    def queue_depth(self) -> int:
        """Requests currently admitted (queued plus running)."""
        with self._pending_lock:
            return self._pending

    def sequence_ids(self) -> list[object]:
        """Sequence ids of the current snapshot, in insertion order."""
        return self._snapshot.database.ids()

    def __len__(self) -> int:
        return len(self._snapshot.database)

    # ------------------------------------------------------------------
    # Queries (executed on the worker pool)
    # ------------------------------------------------------------------
    def search(
        self,
        query: SequenceLike,
        epsilon: float,
        *,
        find_intervals: bool = True,
        timeout: float | None = None,
    ) -> SearchResult:
        """Range search (the paper's SIMILARITY_SEARCH) through the pool."""
        epsilon = check_threshold(epsilon)
        return self.search_detailed(
            query, epsilon, find_intervals=find_intervals, timeout=timeout
        ).result

    def search_detailed(
        self,
        query: SequenceLike,
        epsilon: float,
        *,
        find_intervals: bool = True,
        timeout: float | None = None,
    ) -> ServiceResponse:
        """Range search returning serving metadata alongside the result."""
        epsilon = check_threshold(epsilon)
        return self._execute(
            "search",
            lambda: self._do_search(query, epsilon, find_intervals),
            timeout,
        )

    def range_query(
        self,
        query: SequenceLike,
        epsilon: float,
        *,
        timeout: float | None = None,
    ) -> list[object]:
        """The matching sequence ids only (no solution intervals)."""
        epsilon = check_threshold(epsilon)
        response = self._execute(
            "range",
            lambda: self._do_search(query, epsilon, False),
            timeout,
        )
        return list(response.result.answers)

    def knn(
        self,
        query: SequenceLike,
        k: int,
        *,
        timeout: float | None = None,
    ) -> list[tuple[float, object]]:
        """The ``k`` nearest stored sequences (exact; Seidl-Kriegel)."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        return self._execute("knn", lambda: self._do_knn(query, k), timeout)

    # ------------------------------------------------------------------
    # Writes (serialised; publish a new snapshot)
    # ------------------------------------------------------------------
    def insert(
        self, points: SequenceLike, sequence_id: object = None
    ) -> object:
        """Add a sequence; readers in flight keep their old snapshot."""
        return self._write(
            "insert", lambda db: db.add(points, sequence_id=sequence_id)
        )

    def append(self, sequence_id: object, points: npt.ArrayLike) -> object:
        """Extend a stored sequence with new points (streaming ingestion)."""

        def mutate(db: SequenceDatabase) -> object:
            db.append_points(sequence_id, points)
            return sequence_id

        return self._write("append", mutate)

    def remove(self, sequence_id: object) -> object:
        """Remove a sequence from subsequent snapshots."""

        def mutate(db: SequenceDatabase) -> object:
            db.remove(sequence_id)
            return sequence_id

        return self._write("remove", mutate)

    def _write(
        self, op: str, mutate: Callable[[SequenceDatabase], object]
    ) -> object:
        if self._closed:
            raise EngineClosed("engine is closed")
        self._stats.record_request(op)
        started = time.monotonic()
        with self._write_lock:
            snapshot = self._snapshot
            clone = snapshot.database.clone()
            try:
                written_id = mutate(clone)
            except Exception:
                self._stats.record_failure(op)
                raise
            self._materialise(clone)
            new_version = snapshot.version + 1
            new_search = SimilaritySearch(clone)
            if self._cache is not None:
                patched = self._cache.apply_write(
                    written_id, new_search, new_version
                )
                self._stats.record_cache_patches(patched)
            self._snapshot = _Snapshot(clone, new_search, new_version)
            self._stats.record_snapshot_published()
        self._stats.record_completed(op, time.monotonic() - started)
        return written_id

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The :class:`ServiceStats` block plus live engine gauges."""
        snapshot = self._snapshot
        block = self._stats.snapshot()
        block.update(
            {
                "queue_depth": self.queue_depth,
                "workers": self.workers,
                "queue_cap": self.queue_cap,
                "snapshot_version": snapshot.version,
                "sequences": len(snapshot.database),
                "segments": snapshot.database.segment_count,
                "cache_entries": 0 if self._cache is None else len(self._cache),
                "cache_capacity": 0 if self._cache is None else self._cache.capacity,
                "uptime_s": time.time() - self._started_at,
            }
        )
        return block

    # ------------------------------------------------------------------
    # Execution plumbing
    # ------------------------------------------------------------------
    def _execute(
        self, op: str, fn: Callable[[], _T], timeout: float | None
    ) -> _T:
        if self._closed:
            raise EngineClosed("engine is closed")
        if timeout is None:
            timeout = self.default_timeout
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        deadline = None if timeout is None else time.monotonic() + timeout
        if not self._admission.acquire(blocking=False):
            self._stats.record_overloaded()
            raise Overloaded(
                f"{op} rejected: {self._capacity} requests already admitted "
                f"({self.workers} workers + {self.queue_cap} queue slots)",
                queue_depth=self._capacity,
                capacity=self._capacity,
            )
        with self._pending_lock:
            self._pending += 1
        self._stats.record_request(op)
        try:
            future = self._pool.submit(self._run, op, fn, deadline, timeout)
        except RuntimeError as error:  # pool already shut down
            self._release_slot()
            raise EngineClosed("engine is closed") from error
        future.add_done_callback(lambda _: self._release_slot())
        try:
            remaining = (
                None
                if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            return future.result(timeout=remaining)
        except FutureTimeoutError:
            future.cancel()
            self._stats.record_deadline_exceeded()
            raise DeadlineExceeded(
                f"{op} did not finish within its {timeout}s deadline",
                timeout=float(timeout if timeout is not None else 0.0),
            ) from None
        except DeadlineExceeded:
            self._stats.record_deadline_exceeded()
            raise

    def _release_slot(self) -> None:
        with self._pending_lock:
            self._pending -= 1
        self._admission.release()

    def _run(
        self,
        op: str,
        fn: Callable[[], _T],
        deadline: float | None,
        timeout: float | None,
    ) -> _T:
        if deadline is not None and time.monotonic() >= deadline:
            # Expired while queued: never start the work.
            raise DeadlineExceeded(
                f"{op} spent its whole {timeout}s deadline queued",
                timeout=float(timeout if timeout is not None else 0.0),
            )
        started = time.monotonic()
        try:
            result = fn()
        except DeadlineExceeded:
            raise
        except Exception:
            self._stats.record_failure(op)
            raise
        self._stats.record_completed(op, time.monotonic() - started)
        return result

    # ------------------------------------------------------------------
    # Request bodies (run on worker threads, against one snapshot)
    # ------------------------------------------------------------------
    def _coerce(
        self, query: SequenceLike, snapshot: _Snapshot
    ) -> MultidimensionalSequence:
        if not isinstance(query, MultidimensionalSequence):
            query = MultidimensionalSequence(query)
        if query.dimension != snapshot.database.dimension:
            raise ValueError(
                f"query dimension {query.dimension} != database dimension "
                f"{snapshot.database.dimension}"
            )
        return query

    def _do_knn(self, query: SequenceLike, k: int) -> list[tuple[float, object]]:
        snapshot = self._snapshot
        return snapshot.search.knn(self._coerce(query, snapshot), k)

    def _do_search(
        self, query: SequenceLike, epsilon: float, find_intervals: bool
    ) -> ServiceResponse:
        snapshot = self._snapshot
        sequence = self._coerce(query, snapshot)
        if self._cache is None:
            result = snapshot.search.search(
                sequence, epsilon, find_intervals=find_intervals
            )
            outcome = "off"
        else:
            result, outcome = self._search_cached(
                snapshot, sequence, epsilon, find_intervals
            )
        self._stats.record_cache(outcome)
        self._trace(result, outcome, snapshot.version)
        return ServiceResponse(
            result=result, cache=outcome, snapshot_version=snapshot.version
        )

    def _search_cached(
        self,
        snapshot: _Snapshot,
        sequence: MultidimensionalSequence,
        epsilon: float,
        find_intervals: bool,
    ) -> tuple[SearchResult, str]:
        if self._cache is None:
            raise RuntimeError("_search_cached called with caching disabled")
        key = query_fingerprint(sequence.points)
        entry = self._cache.lookup(key, epsilon, snapshot.version)
        if entry is not None:
            exact_epsilon = (
                abs(entry.epsilon - epsilon) <= _EPSILON_MATCH_TOLERANCE
            )
            if exact_epsilon and (entry.find_intervals or not find_intervals):
                result = self._result_from_entry(
                    entry, snapshot, epsilon, find_intervals
                )
                self._check_served(snapshot, result, sequence, epsilon)
                return result, "hit"
            result = self._refine_entry(
                entry, snapshot, epsilon, find_intervals
            )
            self._check_served(snapshot, result, sequence, epsilon)
            return result, "refine"
        result = snapshot.search.search(
            sequence, epsilon, find_intervals=find_intervals
        )
        self._cache.store(
            key,
            CacheEntry(
                query_partition=result.query_partition,
                epsilon=epsilon,
                find_intervals=find_intervals,
                candidates=set(result.candidates),
                answers=set(result.answers),
                intervals=dict(result.solution_intervals),
                version=snapshot.version,
                dimension=sequence.dimension,
            ),
            self._snapshot.version,
        )
        return result, "miss"

    @staticmethod
    def _result_from_entry(
        entry: CacheEntry,
        snapshot: _Snapshot,
        epsilon: float,
        find_intervals: bool,
    ) -> SearchResult:
        """Materialise a cached entry as a fresh, caller-owned result."""
        candidates = [
            sid for sid in snapshot.database.ids() if sid in entry.candidates
        ]
        answers = [sid for sid in candidates if sid in entry.answers]
        intervals: dict[object, IntervalSet] = {}
        if find_intervals:
            intervals = {sid: entry.intervals[sid] for sid in answers}
        return SearchResult(
            epsilon=epsilon,
            query_partition=entry.query_partition,
            candidates=candidates,
            answers=answers,
            solution_intervals=intervals,
            stats=SearchStats(query_segments=len(entry.query_partition)),
        )

    @staticmethod
    def _refine_entry(
        entry: CacheEntry,
        snapshot: _Snapshot,
        epsilon: float,
        find_intervals: bool,
    ) -> SearchResult:
        """Phase 3 at a tighter ε over the cached candidate set.

        Exact by monotonicity: every Phase-2 candidate at ε is one at
        ε' >= ε, so filtering the cached candidates by their ``min Dmbr``
        reproduces the index probe — without touching the index or
        Phase 1.  ``Dnorm`` (Phase 3) is re-run only for cached *answers*:
        the answer set also shrinks with ε, so a sequence that failed
        Phase 3 at ε' can never pass it at ε <= ε' and keeps its cached
        verdict for free.
        """
        search = snapshot.search
        stats = SearchStats(query_segments=len(entry.query_partition))
        candidates: list[object] = []
        answers: list[object] = []
        intervals: dict[object, IntervalSet] = {}
        for sid in snapshot.database.ids():
            if sid not in entry.candidates:
                continue
            if not search.candidate_within(
                entry.query_partition, sid, epsilon
            ):
                continue
            candidates.append(sid)
            if sid not in entry.answers:
                continue
            matched, interval = search.match_candidate(
                entry.query_partition,
                sid,
                epsilon,
                find_intervals=find_intervals,
            )
            stats.dnorm_evaluations += len(
                snapshot.database.partition(sid).counts
            )
            if matched:
                answers.append(sid)
                if find_intervals:
                    intervals[sid] = interval
        stats.candidates_after_dmbr = len(candidates)
        stats.answers_after_dnorm = len(answers)
        return SearchResult(
            epsilon=epsilon,
            query_partition=entry.query_partition,
            candidates=candidates,
            answers=answers,
            solution_intervals=intervals,
            stats=stats,
        )

    @staticmethod
    def _check_served(
        snapshot: _Snapshot,
        result: SearchResult,
        sequence: MultidimensionalSequence,
        epsilon: float,
    ) -> None:
        """Run the search contract validator on a cache-served result.

        Results produced by ``SimilaritySearch.search`` are validated by
        its own ``lower_bounds`` decorator; results assembled from the
        cache re-use the same validator here, so ``REPRO_CHECK_CONTRACTS``
        covers every serving path.
        """
        if not contracts_enabled():
            return
        validator: Any = getattr(
            SimilaritySearch.search, "__contract_validator__", None
        )
        if validator is not None:
            validator(result, snapshot.search, sequence, epsilon)

    def _trace(
        self, result: SearchResult, outcome: str, version: int
    ) -> None:
        if self._trace_path is None:
            return
        record = search_record(result, timestamp=time.time())
        record.update(
            {"op": "search", "cache": outcome, "snapshot_version": version}
        )
        line = json.dumps(record) + "\n"
        with self._trace_lock:
            with open(self._trace_path, "a", encoding="utf-8") as handle:
                handle.write(line)
