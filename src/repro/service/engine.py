"""The concurrent query engine: snapshots, worker pool, ε-aware cache.

This is the long-lived serving harness around the paper's three-phase
search.  Three mechanisms make it safe and fast under concurrent traffic:

**Snapshot isolation.**  The engine never mutates a published
:class:`~repro.core.database.SequenceDatabase`.  A write (insert / append /
remove) takes the single writer lock, clones the current database
copy-on-write (:meth:`SequenceDatabase.clone` — partitions shared, index
structurally copied), applies the mutation to the private clone,
materialises its index, and atomically swaps the engine's snapshot
reference.  Readers grab the snapshot reference once per request and run
entirely against it: no reader locks on the hot path, and an in-flight
search finishes on the snapshot it started with (readers-never-block-
writers, writers-never-tear-readers).

**Admission control and deadlines.**  Requests execute on a bounded worker
pool behind an :class:`~repro.service.admission.AdaptiveLimiter`: the
admission limit floats between ``workers`` and ``workers + queue_cap``,
shrinking (AIMD) when observed queue wait exceeds ``queue_target_s`` and
growing back while it holds, with priority headroom so writes and
repair/replication traffic shed before reads do.  An arrival beyond the
current limit fast-fails with :class:`~repro.service.errors.Overloaded`
instead of building an unbounded backlog.  Each request carries a
:class:`~repro.util.budget.Deadline`; one that expires while queued is
never executed, and one that expires mid-execution is stopped at the next
cooperative cancellation checkpoint inside the Phase 2/3 loops (counted
as ``cancelled``; a request that completes after its deadline anyway is
counted as ``wasted_work``) and returns :class:`~repro.service.errors.
DeadlineExceeded` to the caller.

**ε-aware caching.**  Completed range searches populate an LRU keyed by
query fingerprint (:mod:`repro.service.cache`).  A request at threshold ε
served by an entry computed at ε' >= ε skips Phases 1-2 entirely and
re-runs only Phase 3 over the cached candidate set — exact by the
lower-bound monotonicity of Lemmas 1-3.  Writes patch affected sequence
ids in place rather than flushing the cache.

**Durability (optional).**  With a :class:`~repro.service.wal.
DurabilityConfig`, every mutation is appended to a checksummed, fsynced
write-ahead log *before* the snapshot that acknowledges it is published,
and startup recovers by replaying the log over the latest good checkpoint
(``snapshot.npz``) — a torn or corrupt log tail is truncated at the last
valid record instead of refusing to start.  :meth:`checkpoint` persists
the current snapshot crash-safely and resets the log; it runs
automatically every ``checkpoint_every`` records and on clean close.

**Graceful degradation (optional).**  With ``degrade_after`` set, a run
of consecutive admission-control rejections flips the engine into a
degraded mode that sheds ``insert``/``append``/``remove`` (readers keep
their capacity) and — with ``degraded_cache_only`` — serves ``search``
from the ε-cache alone.  The mode clears itself once a request is
admitted while the queue has drained below half capacity.  ``/healthz``
reports it, and every :class:`Overloaded` carries a ``retry_after`` hint
derived from queue depth.

The only intentional cross-thread mutation on the read path is the index's
access-counter block (``index.stats``), whose increments may race benignly
under concurrent readers; treat per-engine node-access counts as
approximate.  Use :func:`repro.core.contracts.checking_contracts` via the
``REPRO_CHECK_CONTRACTS`` environment variable to have every served
result — cached or not — re-validated against the no-false-dismissal
contract.
"""

from __future__ import annotations

import base64
import json
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, TypeVar

from repro.analysis.tracing import search_record
from repro.core.contracts import contracts_enabled
from repro.core.database import SequenceDatabase
from repro.core.search import SearchResult, SearchStats, SimilaritySearch
from repro.core.sequence import MultidimensionalSequence
from repro.core.solution_interval import IntervalSet
from repro.service.admission import AdaptiveLimiter
from repro.service.cache import CacheEntry, EpsilonCache, query_fingerprint
from repro.service.errors import (
    DeadlineExceeded,
    EngineClosed,
    Overloaded,
    ReplicaDiverged,
    SnapshotRequired,
)
from repro.service.faults import inject
from repro.service.stats import ServiceStats
from repro.service.wal import (
    DurabilityConfig,
    WalRecord,
    WriteAheadLog,
    encode_frames,
    replay_into,
)
from repro.util.budget import (
    Deadline,
    OperationCancelled,
    checkpoint,
    deadline_scope,
)
from repro.util.errtrace import error_stats, translated
from repro.util.freeze import verify_frozen
from repro.util.sync import TracedLock
from repro.util.validation import check_threshold
from repro.util.version import REPRO_VERSION

if TYPE_CHECKING:
    import numpy.typing as npt

    SequenceLike = MultidimensionalSequence | npt.ArrayLike

__all__ = ["QueryEngine", "ServiceResponse"]

_T = TypeVar("_T")

#: Two thresholds closer than this are served as an exact cache hit.
_EPSILON_MATCH_TOLERANCE = 1e-12


@dataclass(frozen=True)
class _Snapshot:
    """One immutable published state: a database, its engine, a version."""

    database: SequenceDatabase
    search: SimilaritySearch
    version: int


@dataclass(frozen=True)
class ServiceResponse:
    """A search result plus its serving metadata."""

    result: SearchResult
    #: Cache outcome: ``"hit"``, ``"refine"``, ``"miss"`` or ``"off"``.
    cache: str
    #: The snapshot version the request executed against.
    snapshot_version: int


class QueryEngine:
    """A thread-safe serving engine over a :class:`SequenceDatabase`.

    The engine takes ownership of the database: do not mutate it directly
    after construction — go through :meth:`insert` / :meth:`append` /
    :meth:`remove`, which publish copy-on-write snapshots.

    Parameters
    ----------
    database:
        The corpus to serve.  Its index is materialised eagerly so the
        first request never pays construction cost.
    workers:
        Worker-thread count executing requests.
    queue_cap:
        Requests allowed to wait beyond the running ones; ``workers +
        queue_cap`` is the admission limiter's ceiling, and an arrival
        that finds the current limit's worth of requests admitted is
        rejected with :class:`Overloaded`.
    queue_target_s:
        Queue-wait target (seconds) for the adaptive admission limit:
        when a dequeued request waited longer than this, the limit
        shrinks multiplicatively toward ``workers``; while waits hold
        under it, the limit grows additively back toward the ceiling.
        ``None`` (default) pins the limit at the ceiling — the legacy
        static-cap behaviour.
    cache_size:
        ε-aware result-cache capacity (entries); ``0`` disables caching.
    default_timeout:
        Deadline (seconds) applied to requests that do not carry their
        own; ``None`` means no deadline.
    trace_path:
        Optional JSON-lines trace file; every completed range search
        appends one record in the :func:`repro.analysis.tracing.
        search_record` schema plus ``op``/``cache``/``snapshot_version``
        fields, readable with :func:`repro.analysis.tracing.read_trace`.
    durability:
        Optional :class:`~repro.service.wal.DurabilityConfig`.  When set,
        startup recovers from the config's data directory (latest
        checkpoint plus WAL replay; the ``database`` argument only seeds
        an empty directory and may then be ``None``), every mutation is
        WAL-appended and fsynced before it is acknowledged, and
        :meth:`checkpoint` / close persist crash-safe snapshots.
    degrade_after:
        Consecutive admission-control rejections after which the engine
        enters degraded mode (sheds writes; see ``degraded_cache_only``).
        ``None`` (default) disables degradation.
    degraded_cache_only:
        While degraded, serve ``search`` exclusively from the ε-cache —
        a cache miss is rejected with :class:`Overloaded` instead of
        occupying a worker.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.database import SequenceDatabase
    >>> db = SequenceDatabase(dimension=2)
    >>> _ = db.add(np.random.default_rng(0).random((30, 2)), sequence_id="a")
    >>> with QueryEngine(db, workers=2) as engine:
    ...     result = engine.search(np.random.default_rng(1).random((8, 2)), 0.5)
    ...     isinstance(result.answers, list)
    True
    """

    def __init__(
        self,
        database: SequenceDatabase | None,
        *,
        workers: int = 4,
        queue_cap: int = 64,
        queue_target_s: float | None = None,
        cache_size: int = 128,
        default_timeout: float | None = None,
        trace_path: str | Path | None = None,
        durability: DurabilityConfig | None = None,
        degrade_after: int | None = None,
        degraded_cache_only: bool = False,
    ) -> None:
        if database is not None and not isinstance(database, SequenceDatabase):
            raise TypeError(
                f"expected a SequenceDatabase, got {type(database).__name__}"
            )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_cap < 0:
            raise ValueError(f"queue_cap must be >= 0, got {queue_cap}")
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        if default_timeout is not None and default_timeout <= 0:
            raise ValueError(
                f"default_timeout must be positive, got {default_timeout}"
            )
        if degrade_after is not None and degrade_after < 1:
            raise ValueError(
                f"degrade_after must be >= 1 or None, got {degrade_after}"
            )
        if degraded_cache_only and cache_size == 0:
            raise ValueError(
                "degraded_cache_only requires a result cache (cache_size > 0)"
            )
        self.durability = durability
        self._wal: WriteAheadLog | None = None
        self._checkpoints = 0
        self._last_checkpoint_version = 0
        recovered_version = 0
        if durability is not None:
            database, recovered_version = self._recover(database, durability)
        elif database is None:
            raise TypeError(
                "database may be None only with a durability config whose "
                "directory already holds a snapshot"
            )
        self._materialise(database)
        self.workers = workers
        self.queue_cap = queue_cap
        self.default_timeout = default_timeout
        self._snapshot = verify_frozen(
            _Snapshot(database, SimilaritySearch(database), recovered_version),
            role="engine.snapshot",
            site="QueryEngine.__init__",
        )
        self._write_lock = TracedLock("engine.write")
        self._capacity = workers + queue_cap
        self._admission = AdaptiveLimiter(
            min_limit=workers,
            max_limit=self._capacity,
            target_queue_wait=queue_target_s,
        )
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._cache = EpsilonCache(cache_size) if cache_size else None
        self._stats = ServiceStats()
        self._trace_path = None if trace_path is None else Path(trace_path)
        self._trace_lock = TracedLock("engine.trace")
        self._closed = False
        self._started_at = time.time()
        self._degrade_after = degrade_after
        self._degraded_cache_only = degraded_cache_only
        self._health_lock = TracedLock("engine.health")
        self._overload_strikes = 0
        self._degraded = False

    def _recover(
        self, database: SequenceDatabase | None, config: DurabilityConfig
    ) -> tuple[SequenceDatabase, int]:
        """Reload the last checkpoint, replay the WAL, open it for writes.

        The recovered snapshot version equals the WAL's last stamped seq
        (which checkpoint markers preserve across truncation), so two
        recoveries from the same directory publish the same version —
        replay is deterministic and idempotent — and, because every
        acknowledged write appends exactly one record, a durable engine
        keeps ``snapshot_version == wal.last_seq`` across its lifetime.
        Log-shipping leans on that invariant: the ``snapshot_version`` a
        leader reports with an exported snapshot doubles as the WAL
        cursor a freshly-resynced follower should tail from.
        """
        directory = Path(config.directory)
        directory.mkdir(parents=True, exist_ok=True)
        if config.snapshot_path.exists():
            database = SequenceDatabase.load(config.snapshot_path)
        elif database is None:
            raise TypeError(
                f"no snapshot in {directory} and no seed database given"
            )
        else:
            database.save(config.snapshot_path)
        wal = WriteAheadLog(config.wal_path, fsync=config.fsync)
        records = wal.recovered_records
        replay_into(database, records)
        self._wal = wal  # thread-safe: runs inside __init__, pre-publication
        return database, wal.last_seq

    @staticmethod
    def _materialise(database: SequenceDatabase) -> None:
        """Force the index build so readers never trigger (racy) rebuilds."""
        if len(database.index) != database.segment_count:
            raise RuntimeError(
                f"index holds {len(database.index)} entries for "
                f"{database.segment_count} segments — inconsistent database"
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, *, wait: bool = True) -> None:
        """Stop accepting requests and shut the worker pool down.

        A durable engine checkpoints on clean close (unless its config
        says otherwise), so a restart replays an empty WAL; the log file
        handle is closed either way.
        """
        if self._closed:
            return
        self._closed = True  # thread-safe: monotonic latch, races are benign
        self._pool.shutdown(wait=wait)
        if self._wal is not None:
            try:
                if (
                    self.durability is not None
                    and self.durability.checkpoint_on_close
                ):
                    with self._write_lock:
                        self._checkpoint_locked()
            finally:
                self._wal.close()

    def checkpoint(self) -> int:
        """Persist the current snapshot and reset the WAL.

        Returns the snapshot version the checkpoint captured.  The save
        is crash-safe (temp file + atomic replace) and the WAL is only
        truncated *after* the snapshot is durably in place; a crash
        between the two leaves records that replay idempotently over the
        fresh snapshot.
        """
        if self._wal is None or self.durability is None:
            raise RuntimeError("engine has no durability configured")
        with self._write_lock:
            return self._checkpoint_locked()

    def _checkpoint_locked(self) -> int:
        if self._wal is None or self.durability is None:
            raise RuntimeError("engine has no durability configured")
        snapshot = self._snapshot
        verify_frozen(
            snapshot,
            role="engine.checkpoint",
            site="QueryEngine._checkpoint_locked",
        )
        inject("checkpoint.before-save")
        snapshot.database.save(self.durability.snapshot_path)
        inject("checkpoint.before-reset")
        self._wal.reset()
        self._checkpoints += 1
        self._last_checkpoint_version = snapshot.version
        return snapshot.version

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    @property
    def dimension(self) -> int:
        """Dimensionality of the served corpus."""
        return self._snapshot.database.dimension

    @property
    def snapshot_version(self) -> int:
        """Version counter of the currently published snapshot."""
        return self._snapshot.version

    @property
    def queue_depth(self) -> int:
        """Requests currently admitted (queued plus running)."""
        return self._admission.inflight

    @property
    def admission_limit(self) -> int:
        """The adaptive admission limit currently in force."""
        return self._admission.effective_limit()

    @property
    def degraded(self) -> bool:
        """Whether the engine is currently shedding load (degraded mode)."""
        with self._health_lock:
            return self._degraded

    @property
    def durable(self) -> bool:
        """Whether the engine writes a WAL (a durability config is set)."""
        return self._wal is not None

    @property
    def wal_records(self) -> int:
        """Records in the WAL since the last checkpoint (0 if not durable)."""
        return 0 if self._wal is None else len(self._wal)

    @property
    def wal_last_seq(self) -> int:
        """The WAL's last stamped record seq (0 if not durable)."""
        return 0 if self._wal is None else self._wal.last_seq

    @property
    def wal_horizon(self) -> int:
        """Oldest-shippable boundary of the WAL (0 if not durable)."""
        return 0 if self._wal is None else self._wal.horizon()

    @property
    def checkpoints(self) -> int:
        """Checkpoints taken since startup (explicit, automatic, on close)."""
        return self._checkpoints

    @property
    def last_checkpoint_version(self) -> int:
        """Snapshot version captured by the most recent checkpoint."""
        return self._last_checkpoint_version

    def sequence_ids(self) -> list[object]:
        """Sequence ids of the current snapshot, in insertion order."""
        return self._snapshot.database.ids()

    def __len__(self) -> int:
        return len(self._snapshot.database)

    # ------------------------------------------------------------------
    # Queries (executed on the worker pool)
    # ------------------------------------------------------------------
    def search(
        self,
        query: SequenceLike,
        epsilon: float,
        *,
        find_intervals: bool = True,
        timeout: float | None = None,
    ) -> SearchResult:
        """Range search (the paper's SIMILARITY_SEARCH) through the pool."""
        epsilon = check_threshold(epsilon)
        return self.search_detailed(
            query, epsilon, find_intervals=find_intervals, timeout=timeout
        ).result

    def search_detailed(
        self,
        query: SequenceLike,
        epsilon: float,
        *,
        find_intervals: bool = True,
        timeout: float | None = None,
    ) -> ServiceResponse:
        """Range search returning serving metadata alongside the result."""
        epsilon = check_threshold(epsilon)
        return self._execute(
            "search",
            lambda: self._do_search(query, epsilon, find_intervals),
            timeout,
        )

    def range_query(
        self,
        query: SequenceLike,
        epsilon: float,
        *,
        timeout: float | None = None,
    ) -> list[object]:
        """The matching sequence ids only (no solution intervals)."""
        epsilon = check_threshold(epsilon)
        response = self._execute(
            "range",
            lambda: self._do_search(query, epsilon, False),
            timeout,
        )
        return list(response.result.answers)

    def knn(
        self,
        query: SequenceLike,
        k: int,
        *,
        timeout: float | None = None,
    ) -> list[tuple[float, object]]:
        """The ``k`` nearest stored sequences (exact; Seidl-Kriegel)."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        return self._execute("knn", lambda: self._do_knn(query, k), timeout)

    # ------------------------------------------------------------------
    # Writes (serialised; publish a new snapshot)
    # ------------------------------------------------------------------
    def insert(
        self, points: SequenceLike, sequence_id: object = None
    ) -> object:
        """Add a sequence; readers in flight keep their old snapshot."""
        return self._write(
            "insert",
            lambda db: db.add(points, sequence_id=sequence_id),
            lambda db, sid: WalRecord(
                "insert", sid, points=db.sequence(sid).points.tolist()
            ),
        )

    def append(self, sequence_id: object, points: npt.ArrayLike) -> object:
        """Extend a stored sequence with new points (streaming ingestion)."""

        def mutate(db: SequenceDatabase) -> object:
            db.append_points(sequence_id, points)
            return sequence_id

        def wal_entry(db: SequenceDatabase, sid: object) -> WalRecord:
            import numpy as np

            return WalRecord(
                "append",
                sid,
                points=np.asarray(points, dtype=np.float64).tolist(),
                length=len(db.sequence(sid)),
            )

        return self._write("append", mutate, wal_entry)

    def remove(self, sequence_id: object) -> object:
        """Remove a sequence from subsequent snapshots."""

        def mutate(db: SequenceDatabase) -> object:
            db.remove(sequence_id)
            return sequence_id

        return self._write(
            "remove", mutate, lambda db, sid: WalRecord("remove", sid)
        )

    def _write(
        self,
        op: str,
        mutate: Callable[[SequenceDatabase], object],
        wal_entry: Callable[[SequenceDatabase, object], WalRecord],
    ) -> object:
        if self._closed:
            raise EngineClosed("engine is closed")
        if self._degrade_after is not None and self.degraded:
            self._stats.record_shed(op)
            raise self._overloaded_error(op, shed=True)
        # Priority-aware shedding: writes yield admission headroom to
        # reads before the engine is anywhere near its hard limit.
        if not self._admission.permits("write"):
            self._stats.record_shed(op)
            self._note_overload()
            raise self._overloaded_error(op, priority="write")
        self._stats.record_request(op)
        started = time.monotonic()
        with self._write_lock:
            snapshot = self._snapshot
            clone = snapshot.database.clone()
            try:
                written_id = mutate(clone)
                self._materialise(clone)
                if self._wal is not None:
                    # Durability barrier: the record must be on disk
                    # before the snapshot that acknowledges it publishes.
                    self._wal.append(wal_entry(clone, written_id))
                    self._stats.record_wal_append()
            except Exception:
                self._stats.record_failure(op)
                raise
            new_version = snapshot.version + 1
            new_search = SimilaritySearch(clone)
            if self._cache is not None:
                patched = self._cache.apply_write(
                    written_id, new_search, new_version
                )
                self._stats.record_cache_patches(patched)
            self._snapshot = verify_frozen(
                _Snapshot(clone, new_search, new_version),
                role="engine.snapshot",
                site="QueryEngine._write",
            )
            self._stats.record_snapshot_published()
            if (
                self._wal is not None
                and self.durability is not None
                and self.durability.checkpoint_every > 0
                and len(self._wal) >= self.durability.checkpoint_every
            ):
                self._checkpoint_locked()
        self._stats.record_completed(op, time.monotonic() - started)
        return written_id

    # ------------------------------------------------------------------
    # Replication (log shipping)
    # ------------------------------------------------------------------
    def wal_tail(
        self,
        after_seq: int,
        *,
        snapshot_version: int | None = None,
        limit: int = 512,
    ) -> dict:
        """Ship the WAL records after ``after_seq`` as CRC-framed batches.

        This is the leader side of log-shipping replication (the
        ``/wal/tail`` endpoint).  The call first runs the handshake: the
        follower presents its applied cursor (``after_seq``) and,
        optionally, the leader ``snapshot_version`` it last synced
        against.  A cursor ahead of this log's ``last_seq`` — or a
        presented version newer than the leader's own — is *divergence*
        (the follower holds history this leader never wrote) and raises
        :class:`ReplicaDiverged`; a cursor behind :meth:`WriteAheadLog.
        horizon` means the tail was checkpointed away and raises
        :class:`SnapshotRequired` (resync via :meth:`export_sequences`).

        Otherwise returns a JSON-ready dict: ``frames`` (base64 of the
        :func:`~repro.service.wal.encode_frames` batch), ``count``,
        ``batch_last_seq`` (the cursor after applying this batch),
        ``last_seq``/``horizon`` (the leader log's live range) and
        ``snapshot_version``.  The read itself is lock-free, so shipping
        never blocks the leader's writer.
        """
        if self._wal is None:
            raise RuntimeError("engine has no durability configured")
        if after_seq < 0:
            raise ValueError(f"after_seq must be >= 0, got {after_seq}")
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        # Replication traffic sheds first under read pressure: shipping
        # can always resume from the same cursor once the queue drains.
        if not self._admission.permits("repair"):
            self._stats.record_shed("wal_tail")
            raise self._overloaded_error("wal_tail", priority="repair")
        inject("wal.ship.handshake")
        leader_seq = self._wal.last_seq
        leader_version = self.snapshot_version
        if after_seq > leader_seq:
            raise ReplicaDiverged(
                f"follower cursor {after_seq} is ahead of the leader's "
                f"last seq {leader_seq} — histories have diverged",
                leader_seq=leader_seq,
                follower_seq=after_seq,
            )
        if snapshot_version is not None and snapshot_version > leader_version:
            raise ReplicaDiverged(
                f"follower synced against snapshot version "
                f"{snapshot_version} but the leader is at "
                f"{leader_version} — histories have diverged",
                leader_seq=leader_version,
                follower_seq=snapshot_version,
            )
        horizon = self._wal.horizon()
        if after_seq < horizon:
            raise SnapshotRequired(
                f"records after seq {after_seq} were checkpointed away "
                f"(horizon is {horizon}); a snapshot resync is required",
                horizon=horizon,
                after_seq=after_seq,
            )
        inject("wal.ship.batch")
        records = self._wal.read_from(after_seq, limit=limit)
        frames = encode_frames(records)
        batch_last_seq = records[-1].seq if records else after_seq
        return {
            "frames": base64.b64encode(frames).decode("ascii"),
            "count": len(records),
            "batch_last_seq": batch_last_seq,
            "last_seq": leader_seq,
            "horizon": horizon,
            "snapshot_version": leader_version,
        }

    def apply_records(self, records: list[WalRecord]) -> int:
        """Apply a shipped batch of WAL records; returns the applied count.

        The follower side of log shipping: replays ``records`` through
        the same idempotent :func:`~repro.service.wal.replay_into` that
        crash recovery uses (so a duplicate batch delivery — e.g. after a
        crash between applying and persisting the cursor — converges
        instead of double-applying), appends every delivered record to
        this engine's own WAL when durable (*before* the acknowledging
        snapshot publishes, the same barrier as a direct write — each
        record is re-stamped into this log's seq space), and publishes
        one new snapshot whose version advances by the batch size.  The
        ε-cache is cleared rather than patched: a batch may touch many
        ids, and version-pinned lookups make stale entries unreachable
        anyway.
        """
        if self._closed:
            raise EngineClosed("engine is closed")
        if not records:
            return 0
        if not self._admission.permits("repair"):
            self._stats.record_shed("apply")
            raise self._overloaded_error("apply", priority="repair")
        self._stats.record_request("apply")
        started = time.monotonic()
        with self._write_lock:
            snapshot = self._snapshot
            clone = snapshot.database.clone()
            try:
                applied = replay_into(clone, records)
                self._materialise(clone)
                if self._wal is not None:
                    for record in records:
                        self._wal.append(record)
                        self._stats.record_wal_append()
            except Exception:
                self._stats.record_failure("apply")
                raise
            new_version = snapshot.version + len(records)
            if self._cache is not None:
                self._cache.clear()
            self._snapshot = verify_frozen(
                _Snapshot(clone, SimilaritySearch(clone), new_version),
                role="engine.snapshot",
                site="QueryEngine.apply_records",
            )
            self._stats.record_snapshot_published()
            if (
                self._wal is not None
                and self.durability is not None
                and self.durability.checkpoint_every > 0
                and len(self._wal) >= self.durability.checkpoint_every
            ):
                self._checkpoint_locked()
        self._stats.record_completed("apply", time.monotonic() - started)
        return applied

    def export_sequences(
        self,
        sequence_ids: list[object] | None = None,
        *,
        include_points: bool = True,
    ) -> dict:
        """A JSON-ready dump of stored sequences, for snapshot resync.

        Reads one snapshot reference, so the export is internally
        consistent and never blocks writers.  Returns
        ``{"snapshot_version", "dimension", "sequences": [...]}`` where
        each sequence carries ``id``, ``length`` and (with
        ``include_points``) its raw point rows.  On a durable leader the
        returned ``snapshot_version`` equals the WAL seq covering this
        state, so a follower that restores the export can resume tailing
        from exactly that cursor.  ``include_points=False`` gives a cheap
        manifest for diffing.  Ids must be JSON-safe (str/int).
        """
        snapshot = self._snapshot
        wanted = None if sequence_ids is None else set(sequence_ids)
        sequences: list[dict] = []
        for sid in snapshot.database.ids():
            if wanted is not None and sid not in wanted:
                continue
            if not isinstance(sid, (str, int)) or isinstance(sid, bool):
                raise TypeError(
                    "only str/int sequence ids can be exported, got "
                    f"{type(sid).__name__}"
                )
            sequence = snapshot.database.sequence(sid)
            entry: dict[str, Any]
            if include_points:
                entry = {
                    "id": sid,
                    "length": len(sequence),
                    "points": sequence.points.tolist(),
                }
            else:
                entry = {"id": sid, "length": len(sequence)}
            sequences.append(entry)
        return {
            "snapshot_version": snapshot.version,
            "dimension": snapshot.database.dimension,
            "sequences": sequences,
        }

    def restore(self, sequences: list[dict]) -> int:
        """Replace the whole corpus with an exported snapshot (resync).

        The follower side of a full snapshot resync, taken when tailing
        cannot catch up (cursor behind the leader's horizon, or
        divergence).  Builds a fresh database from ``sequences`` (each
        ``{"id", "points"}`` as produced by :meth:`export_sequences`),
        and on a durable engine persists it as a checkpoint *before*
        publication — the old WAL is reset (its seq counter survives via
        the checkpoint marker), so a crash right after the resync
        recovers the restored state, never a hybrid.  Returns the number
        of sequences restored.
        """
        if self._closed:
            raise EngineClosed("engine is closed")
        with self._write_lock:
            snapshot = self._snapshot
            old = snapshot.database
            database = SequenceDatabase(
                dimension=old.dimension,
                cost_constant=old.cost_constant,
                max_points=old.max_points,
                index_kind=old.index_kind,
                max_entries=old.max_entries,
            )
            for entry in sequences:
                points = entry.get("points")
                if points is None:
                    raise ValueError(
                        f"cannot restore {entry.get('id')!r}: the export "
                        "carries no points (was it taken with "
                        "include_points=False?)"
                    )
                database.add(points, sequence_id=entry["id"])
            self._materialise(database)
            new_version = snapshot.version + 1
            if self._wal is not None and self.durability is not None:
                database.save(self.durability.snapshot_path)
                self._wal.reset()
                self._checkpoints += 1
                self._last_checkpoint_version = new_version
            if self._cache is not None:
                self._cache.clear()
            self._snapshot = verify_frozen(
                _Snapshot(database, SimilaritySearch(database), new_version),
                role="engine.snapshot",
                site="QueryEngine.restore",
            )
            self._stats.record_snapshot_published()
        return len(sequences)

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The :class:`ServiceStats` block plus live engine gauges."""
        snapshot = self._snapshot
        block = self._stats.snapshot()
        block.update(
            {
                "queue_depth": self.queue_depth,
                "workers": self.workers,
                "queue_cap": self.queue_cap,
                "admission": self._admission.snapshot(),
                "snapshot_version": snapshot.version,
                "sequences": len(snapshot.database),
                "segments": snapshot.database.segment_count,
                "cache_entries": 0 if self._cache is None else len(self._cache),
                "cache_capacity": 0 if self._cache is None else self._cache.capacity,
                # The LRU's own lock-guarded counters; the "cache" block
                # above it tracks request *outcomes* as the engine saw
                # them, this one tracks the cache's internal traffic
                # (store races, evictions, write-through patches).
                "cache_lru": {} if self._cache is None else self._cache.stats(),
                "uptime_s": time.time() - self._started_at,
                "repro_version": REPRO_VERSION,
                "degraded": self.degraded,
                # Per-site swallow/translate/propagate counters from the
                # errtrace sanitizer; empty unless REPRO_ERROR_CHECKS=1
                # (or checking_errors()) is active somewhere in-process.
                "errors": error_stats(),
                "durability": {
                    "enabled": self.durable,
                    "wal_records": self.wal_records,
                    "wal_last_seq": self.wal_last_seq,
                    "wal_horizon": self.wal_horizon,
                    "checkpoints": self._checkpoints,
                    "last_checkpoint_version": self._last_checkpoint_version,
                },
            }
        )
        return block

    # ------------------------------------------------------------------
    # Execution plumbing
    # ------------------------------------------------------------------
    def _execute(
        self, op: str, fn: Callable[[], _T], timeout: float | None
    ) -> _T:
        if self._closed:
            raise EngineClosed("engine is closed")
        if timeout is None:
            timeout = self.default_timeout
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        # The budget starts ticking before admission: a fault-injected
        # admission stall (or a real one) debits the caller's deadline
        # exactly like queue wait does.
        deadline = Deadline.after(timeout)
        inject("engine.admission.delay")
        depth_before = self._admission.acquire("read")
        if depth_before is None:
            self._stats.record_overloaded()
            self._note_overload()
            raise self._overloaded_error(op)
        self._note_admitted(depth_before)
        self._stats.record_request(op)
        admitted_at = time.monotonic()
        try:
            future = self._pool.submit(
                self._run, op, fn, deadline, timeout, admitted_at
            )
        except RuntimeError as error:  # pool already shut down
            self._admission.release()
            raise EngineClosed("engine is closed") from error
        future.add_done_callback(lambda _: self._admission.release())
        try:
            remaining = deadline.remaining()
            if remaining is not None:
                remaining = max(0.0, remaining)
            return future.result(timeout=remaining)
        except FutureTimeoutError:
            # Not started: drop it from the queue.  Started: flip the
            # cancel latch so the next checkpoint inside the scan stops
            # the worker instead of letting it complete into the void.
            future.cancel()
            deadline.cancel()
            self._stats.record_deadline_exceeded()
            raise DeadlineExceeded(
                f"{op} did not finish within its {timeout}s deadline",
                timeout=float(timeout if timeout is not None else 0.0),
            ) from None
        except DeadlineExceeded:
            self._stats.record_deadline_exceeded()
            raise

    # ------------------------------------------------------------------
    # Overload accounting and graceful degradation
    # ------------------------------------------------------------------
    def _overloaded_error(
        self, op: str, *, shed: bool = False, priority: str | None = None
    ) -> Overloaded:
        depth = self.queue_depth
        limit = self._admission.effective_limit()
        if shed:
            message = (
                f"{op} shed: engine degraded after sustained overload "
                f"(writes resume when the queue drains)"
            )
        elif priority is not None:
            message = (
                f"{op} shed: {priority}-priority traffic yields its "
                f"admission headroom under load ({depth} of limit "
                f"{limit} admitted)"
            )
        else:
            message = (
                f"{op} rejected: admission limit {limit} reached "
                f"(ceiling {self.workers} workers + {self.queue_cap} "
                f"queue slots)"
            )
        return Overloaded(
            message,
            queue_depth=depth,
            capacity=limit,
            retry_after=self._retry_after_hint(depth),
        )

    def _retry_after_hint(self, depth: int) -> float:
        """Suggested client backoff (seconds), derived from queue depth."""
        hint = 0.05 * (1.0 + depth / max(1, self.workers))
        return round(min(5.0, max(0.05, hint)), 3)

    def _note_overload(self) -> None:
        if self._degrade_after is None:
            return
        with self._health_lock:
            self._overload_strikes += 1
            if (
                not self._degraded
                and self._overload_strikes >= self._degrade_after
            ):
                self._degraded = True
                self._stats.record_degraded(True)

    def _note_admitted(self, depth_before: int) -> None:
        if self._degrade_after is None:
            return
        with self._health_lock:
            self._overload_strikes = 0
            if self._degraded and depth_before <= self._capacity // 2:
                self._degraded = False
                self._stats.record_degraded(False)

    def _run(
        self,
        op: str,
        fn: Callable[[], _T],
        deadline: Deadline,
        timeout: float | None,
        admitted_at: float,
    ) -> _T:
        # The wait between admission and this dequeue is the signal the
        # adaptive limit regulates.
        self._admission.observe(time.monotonic() - admitted_at)
        if deadline.done():
            # Expired (or abandoned) while queued: never start the work.
            raise DeadlineExceeded(
                f"{op} spent its whole {timeout}s deadline queued",
                timeout=float(timeout if timeout is not None else 0.0),
            )
        started = time.monotonic()
        try:
            inject("engine.worker")
            with deadline_scope(deadline):
                result = fn()
        except OperationCancelled as error:
            # A checkpoint inside the Phase 2/3 loops stopped the scan:
            # budget spent mid-flight, but no CPU burned into the void.
            self._stats.record_cancelled()
            raise translated(
                error,
                DeadlineExceeded(
                    f"{op} stopped at a cancellation checkpoint ({error})",
                    timeout=float(timeout if timeout is not None else 0.0),
                ),
                role="engine.worker",
                site="QueryEngine._run",
            ) from error
        except DeadlineExceeded:
            raise
        except Exception:
            self._stats.record_failure(op)
            raise
        if deadline.done():
            # Completed anyway — the caller already gave up.  Work that
            # lands here is exactly what more checkpoints would save.
            self._stats.record_wasted_work()
        self._stats.record_completed(op, time.monotonic() - started)
        return result

    # ------------------------------------------------------------------
    # Request bodies (run on worker threads, against one snapshot)
    # ------------------------------------------------------------------
    def _coerce(
        self, query: SequenceLike, snapshot: _Snapshot
    ) -> MultidimensionalSequence:
        if not isinstance(query, MultidimensionalSequence):
            query = MultidimensionalSequence(query)
        if query.dimension != snapshot.database.dimension:
            raise ValueError(
                f"query dimension {query.dimension} != database dimension "
                f"{snapshot.database.dimension}"
            )
        return query

    def _do_knn(self, query: SequenceLike, k: int) -> list[tuple[float, object]]:
        snapshot = self._snapshot
        return snapshot.search.knn(self._coerce(query, snapshot), k)

    def _do_search(
        self, query: SequenceLike, epsilon: float, find_intervals: bool
    ) -> ServiceResponse:
        snapshot = self._snapshot
        sequence = self._coerce(query, snapshot)
        if self._cache is None:
            result = snapshot.search.search(
                sequence, epsilon, find_intervals=find_intervals
            )
            outcome = "off"
        else:
            cache_only = (
                self._degraded_cache_only
                and self._degrade_after is not None
                and self.degraded
            )
            result, outcome = self._search_cached(
                snapshot, sequence, epsilon, find_intervals,
                cache_only=cache_only,
            )
        self._stats.record_cache(outcome)
        self._trace(result, outcome, snapshot.version)
        return ServiceResponse(
            result=result, cache=outcome, snapshot_version=snapshot.version
        )

    def _search_cached(
        self,
        snapshot: _Snapshot,
        sequence: MultidimensionalSequence,
        epsilon: float,
        find_intervals: bool,
        *,
        cache_only: bool = False,
    ) -> tuple[SearchResult, str]:
        if self._cache is None:
            raise RuntimeError("_search_cached called with caching disabled")
        key = query_fingerprint(sequence.points)
        entry = self._cache.lookup(key, epsilon, snapshot.version)
        if entry is None and cache_only:
            # Degraded cache-only serving: a miss would occupy a worker
            # with a full three-phase search; shed it instead.
            self._stats.record_shed("search")
            raise self._overloaded_error("search", shed=True)
        if entry is not None:
            exact_epsilon = (
                abs(entry.epsilon - epsilon) <= _EPSILON_MATCH_TOLERANCE
            )
            if exact_epsilon and (entry.find_intervals or not find_intervals):
                result = self._result_from_entry(
                    entry, snapshot, epsilon, find_intervals
                )
                self._check_served(snapshot, result, sequence, epsilon)
                return result, "hit"
            result = self._refine_entry(
                entry, snapshot, epsilon, find_intervals
            )
            self._check_served(snapshot, result, sequence, epsilon)
            return result, "refine"
        result = snapshot.search.search(
            sequence, epsilon, find_intervals=find_intervals
        )
        self._cache.store(
            key,
            CacheEntry(
                query_partition=result.query_partition,
                epsilon=epsilon,
                find_intervals=find_intervals,
                candidates=set(result.candidates),
                answers=set(result.answers),
                intervals=dict(result.solution_intervals),
                version=snapshot.version,
                dimension=sequence.dimension,
            ),
            self._snapshot.version,
        )
        return result, "miss"

    @staticmethod
    def _result_from_entry(
        entry: CacheEntry,
        snapshot: _Snapshot,
        epsilon: float,
        find_intervals: bool,
    ) -> SearchResult:
        """Materialise a cached entry as a fresh, caller-owned result."""
        candidates = [
            sid for sid in snapshot.database.ids() if sid in entry.candidates
        ]
        answers = [sid for sid in candidates if sid in entry.answers]
        intervals: dict[object, IntervalSet] = {}
        if find_intervals:
            intervals = {sid: entry.intervals[sid] for sid in answers}
        return SearchResult(
            epsilon=epsilon,
            query_partition=entry.query_partition,
            candidates=candidates,
            answers=answers,
            solution_intervals=intervals,
            stats=SearchStats(query_segments=len(entry.query_partition)),
        )

    @staticmethod
    def _refine_entry(
        entry: CacheEntry,
        snapshot: _Snapshot,
        epsilon: float,
        find_intervals: bool,
    ) -> SearchResult:
        """Phase 3 at a tighter ε over the cached candidate set.

        Exact by monotonicity: every Phase-2 candidate at ε is one at
        ε' >= ε, so filtering the cached candidates by their ``min Dmbr``
        reproduces the index probe — without touching the index or
        Phase 1.  ``Dnorm`` (Phase 3) is re-run only for cached *answers*:
        the answer set also shrinks with ε, so a sequence that failed
        Phase 3 at ε' can never pass it at ε <= ε' and keeps its cached
        verdict for free.
        """
        search = snapshot.search
        stats = SearchStats(query_segments=len(entry.query_partition))
        candidates: list[object] = []
        answers: list[object] = []
        intervals: dict[object, IntervalSet] = {}
        for sid in snapshot.database.ids():
            checkpoint("engine.refine")
            if sid not in entry.candidates:
                continue
            if not search.candidate_within(
                entry.query_partition, sid, epsilon
            ):
                continue
            candidates.append(sid)
            if sid not in entry.answers:
                continue
            matched, interval = search.match_candidate(
                entry.query_partition,
                sid,
                epsilon,
                find_intervals=find_intervals,
            )
            stats.dnorm_evaluations += len(
                snapshot.database.partition(sid).counts
            )
            if matched:
                answers.append(sid)
                if find_intervals:
                    intervals[sid] = interval
        stats.candidates_after_dmbr = len(candidates)
        stats.answers_after_dnorm = len(answers)
        return SearchResult(
            epsilon=epsilon,
            query_partition=entry.query_partition,
            candidates=candidates,
            answers=answers,
            solution_intervals=intervals,
            stats=stats,
        )

    @staticmethod
    def _check_served(
        snapshot: _Snapshot,
        result: SearchResult,
        sequence: MultidimensionalSequence,
        epsilon: float,
    ) -> None:
        """Run the search contract validator on a cache-served result.

        Results produced by ``SimilaritySearch.search`` are validated by
        its own ``lower_bounds`` decorator; results assembled from the
        cache re-use the same validator here, so ``REPRO_CHECK_CONTRACTS``
        covers every serving path.
        """
        if not contracts_enabled():
            return
        validator: Any = getattr(
            SimilaritySearch.search, "__contract_validator__", None
        )
        if validator is not None:
            validator(result, snapshot.search, sequence, epsilon)

    def _trace(
        self, result: SearchResult, outcome: str, version: int
    ) -> None:
        if self._trace_path is None:
            return
        record = search_record(result, timestamp=time.time())
        record.update(
            {"op": "search", "cache": outcome, "snapshot_version": version}
        )
        line = json.dumps(record) + "\n"
        with self._trace_lock:
            with open(self._trace_path, "a", encoding="utf-8") as handle:
                handle.write(line)
