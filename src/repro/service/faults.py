"""Fault injection for the serving layer: the named sites and the seam.

The mechanism lives in :mod:`repro.util.faults` (the ``util`` layer, so
``core.database`` can hit sites without importing upward); this module is
the serving-facing surface and the registry of every site the subsystem
instruments.  Chaos tests arm them with :func:`fault_plan` or the
``REPRO_FAULTS`` environment variable — see the table:

==========================  ============================================
site                        where it fires
==========================  ============================================
``wal.append``              before a WAL record's bytes are written
``wal.fsync``               after flush, before ``os.fsync`` of the log
``checkpoint.before-save``  checkpoint taken, before the snapshot save
``checkpoint.before-reset`` snapshot saved, before the WAL truncate —
                            the mid-checkpoint kill-point
``database.save.replace``   snapshot temp file written, before the
                            atomic ``os.replace`` into place
``engine.admission.delay``  in ``_execute``, after the request's
                            deadline is stamped but before admission —
                            a sleep here simulates queue stall and
                            debits the request's budget
``engine.worker``           on the worker thread, before the request
                            body runs (slow / failed execution)
``http.response``           before an HTTP response is written
                            (dropped-response injection)
``cluster.backend.request``  before the coordinator calls any backend
                            (backend-down / slow-shard injection)
``cluster.backend.slow``    same dispatch point, fired after
                            ``cluster.backend.request`` — a sleep here
                            stalls the sub-call *before* its budget is
                            computed, so the stall debits the
                            coordinator's remaining deadline
``cluster.health.probe``    before the coordinator probes a backend's
                            ``/healthz``
``cluster.read-repair``     before each queued write is replayed onto a
                            recovered replica
``wal.ship.handshake``      on the leader, before a ``/wal/tail``
                            handshake is validated (divergence /
                            horizon checks)
``wal.ship.batch``          handshake accepted, before the shipped
                            batch is read and framed — the
                            mid-replication kill-point
``follower.apply``          on the follower, batch decoded and CRC-
                            verified, before it is applied locally
==========================  ============================================

The coordinator additionally fires *per-backend* dynamic sites —
``cluster.backend.<i>.request`` and ``cluster.backend.<i>.probe`` for
backend index ``i`` — so a chaos plan can take down exactly one replica
(``cluster.backend.2.request=raise:0`` keeps backend 2 dark forever,
``...=raise:0:0:2`` makes it flap).  Dynamic sites are not enumerable in
advance and therefore not part of :data:`FAULT_SITES`.

All static sites are listed in :data:`FAULT_SITES`; tests iterate it to
assert instrumentation does not silently disappear.
"""

from __future__ import annotations

from repro.util.faults import (
    FAULTS_ENV_VAR,
    FaultInjected,
    FaultPlan,
    FaultRule,
    active_plan,
    fault_plan,
    inject,
    parse_fault_spec,
)

__all__ = [
    "FAULTS_ENV_VAR",
    "FAULT_SITES",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "fault_plan",
    "inject",
    "parse_fault_spec",
]

#: Every injection site the serving subsystem instruments.
FAULT_SITES: tuple[str, ...] = (
    "wal.append",
    "wal.fsync",
    "checkpoint.before-save",
    "checkpoint.before-reset",
    "database.save.replace",
    "engine.admission.delay",
    "engine.worker",
    "http.response",
    "cluster.backend.request",
    "cluster.backend.slow",
    "cluster.health.probe",
    "cluster.read-repair",
    "wal.ship.handshake",
    "wal.ship.batch",
    "follower.apply",
)
