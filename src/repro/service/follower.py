"""The replica side of WAL log-shipping: tail, verify, apply, persist.

A follower is a :class:`~repro.service.engine.QueryEngine` that never
takes direct writes; its state advances only by tailing a leader's WAL
through the ``/wal/tail`` contract (:meth:`QueryEngine.wal_tail` — the
leader may equally be an in-process engine or a
:class:`~repro.service.client.ServiceClient` pointed at a remote one).
Each poll:

1. presents the follower's **cursor** — ``(applied_seq,
   leader_snapshot_version)`` — as the replication handshake;
2. decodes the shipped batch with
   :func:`~repro.service.wal.decode_frames`, which re-verifies every
   record's CRC, so a batch damaged in transit is dropped whole;
3. replays it through :meth:`QueryEngine.apply_records` (the same
   idempotent replay as crash recovery — duplicate delivery converges);
4. advances the cursor and persists it **after** the apply.

Apply-then-persist is the crash-safety choice: a kill -9 between the two
leaves the cursor *behind* the applied state, never ahead, so the worst
restart outcome is re-fetching records whose replay is a no-op.  The
cursor file is one JSON object written atomically (temp file + fsync +
``os.replace``) next to the follower's data::

    {"applied_seq": 1482, "leader_snapshot_version": 1482,
     "leader": "http://leader:8080"}

When the leader answers :class:`~repro.service.errors.SnapshotRequired`
(the follower's cursor fell behind the leader's WAL horizon — the tail
was checkpointed away) the follower falls back to a full
:meth:`resync`: it restores the leader's exported snapshot and resumes
tailing from the export's ``snapshot_version``, which on a durable
leader *is* the WAL seq covering that state.
:class:`~repro.service.errors.ReplicaDiverged` is surfaced to the
caller (and flagged in :meth:`status`); :meth:`run` self-heals it with
a resync, but a one-shot :meth:`poll` lets a coordinator decide.
"""

from __future__ import annotations

import base64
import json
import os
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

from repro.service.errors import ReplicaDiverged, SnapshotRequired
from repro.service.wal import decode_frames
from repro.util.errtrace import record_swallowed
from repro.util.faults import inject
from repro.util.sync import TracedLock

if TYPE_CHECKING:
    from repro.service.engine import QueryEngine

__all__ = ["ReplicationLeader", "WalFollower"]


@runtime_checkable
class ReplicationLeader(Protocol):
    """What a follower needs from its leader: a tail and an export.

    Satisfied by :class:`~repro.service.engine.QueryEngine` itself (in-
    process replication, as the tests and benchmarks use) and by
    :class:`~repro.service.client.ServiceClient` (replication over HTTP).
    """

    def wal_tail(
        self,
        after_seq: int,
        *,
        snapshot_version: int | None = None,
        limit: int = 512,
    ) -> dict: ...

    def export_sequences(
        self,
        sequence_ids: list[object] | None = None,
        *,
        include_points: bool = True,
    ) -> dict: ...


class WalFollower:
    """Tails a leader's WAL into a local engine, durably tracking its cursor.

    Parameters
    ----------
    engine:
        The local engine to apply shipped records to.  Make it durable
        (same ``DurabilityConfig`` machinery as a leader) if the follower
        itself must survive kill -9: applied records land in the
        follower's own WAL before the cursor advances.
    leader:
        Anything satisfying :class:`ReplicationLeader`.
    cursor_path:
        Where the applied cursor persists.  A missing file means a fresh
        follower (cursor 0 — tail from the beginning, or resync if the
        leader's horizon has moved).
    batch_limit:
        Max records requested per poll.
    leader_url:
        Purely informational (recorded in the cursor file and
        :meth:`status`) — the address shown to operators.
    """

    def __init__(
        self,
        engine: "QueryEngine",
        leader: ReplicationLeader,
        *,
        cursor_path: str | Path,
        batch_limit: int = 512,
        leader_url: str | None = None,
    ) -> None:
        if batch_limit < 1:
            raise ValueError(f"batch_limit must be >= 1, got {batch_limit}")
        self._engine = engine
        self._leader = leader
        self._batch_limit = batch_limit
        self._leader_url = leader_url
        self.cursor_path = Path(cursor_path)
        applied_seq, leader_version = self._load_cursor()
        self._lock = TracedLock("follower.state")
        self._applied_seq = applied_seq
        self._leader_version = leader_version
        self._leader_seq = applied_seq  # refined by the first handshake
        self._diverged = False
        self._last_error: str | None = None
        self._polls = 0
        self._batches = 0
        self._applied_records = 0
        self._resyncs = 0
        self._last_poll_at: float | None = None

    # ------------------------------------------------------------------
    # Cursor persistence
    # ------------------------------------------------------------------
    def _load_cursor(self) -> tuple[int, int]:
        if not self.cursor_path.exists():
            return 0, 0
        body = json.loads(self.cursor_path.read_text(encoding="utf-8"))
        applied = int(body.get("applied_seq", 0))
        version = int(body.get("leader_snapshot_version", 0))
        if applied < 0 or version < 0:
            raise ValueError(
                f"{self.cursor_path} carries a negative cursor — refusing "
                "to tail from a corrupt position"
            )
        return applied, version

    def _persist_cursor(self, applied_seq: int, leader_version: int) -> None:
        """Atomically rewrite the cursor file (temp + fsync + replace).

        Called *after* the records up to ``applied_seq`` are applied (and,
        on a durable engine, in its own WAL), so a crash at any point
        leaves a cursor at or behind the applied state — re-fetching is
        idempotent, skipping ahead is impossible.
        """
        self.cursor_path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "applied_seq": applied_seq,
                "leader_snapshot_version": leader_version,
                "leader": self._leader_url,
            },
            separators=(",", ":"),
        )
        tmp = self.cursor_path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.cursor_path)

    # ------------------------------------------------------------------
    # Polling
    # ------------------------------------------------------------------
    def poll(self) -> dict:
        """One tail-and-apply round trip; returns a summary dict.

        The summary carries ``applied`` (records newly reflected in the
        engine), ``count`` (records shipped — duplicates ship but apply
        as no-ops), ``lag`` (leader ``last_seq`` minus our cursor after
        this batch) and ``resync`` (whether this poll fell back to a full
        snapshot resync).  Raises :class:`ReplicaDiverged` if the leader
        rejects our handshake — :meth:`resync` recovers, and
        :meth:`status` reports ``diverged`` until it runs.
        """
        with self._lock:
            after_seq = self._applied_seq
            version = self._leader_version
            self._polls += 1
        try:
            reply = self._leader.wal_tail(
                after_seq,
                snapshot_version=version if version > 0 else None,
                limit=self._batch_limit,
            )
        except SnapshotRequired:
            return self.resync()
        except ReplicaDiverged as error:
            with self._lock:
                self._diverged = True
                self._last_error = str(error)
            raise
        frames = base64.b64decode(reply["frames"])
        records = decode_frames(frames)  # verifies every frame's CRC
        inject("follower.apply")
        applied = self._engine.apply_records(records)
        batch_last_seq = int(reply["batch_last_seq"])
        leader_seq = int(reply["last_seq"])
        leader_version = int(reply["snapshot_version"])
        with self._lock:
            self._applied_seq = max(self._applied_seq, batch_last_seq)
            self._leader_version = leader_version
            self._leader_seq = leader_seq
            self._batches += 1 if records else 0
            self._applied_records += applied
            self._last_error = None
            self._last_poll_at = time.time()
            applied_seq = self._applied_seq
            lag = max(0, leader_seq - applied_seq)
        self._persist_cursor(applied_seq, leader_version)
        return {
            "applied": applied,
            "count": len(records),
            "applied_seq": applied_seq,
            "lag": lag,
            "resync": False,
        }

    def resync(self) -> dict:
        """Full snapshot resync: restore the leader's export, reset cursor.

        Used when tailing cannot catch up — the cursor fell behind the
        leader's WAL horizon, or the histories diverged.  After the
        restore, the cursor jumps to the export's ``snapshot_version``:
        on a durable leader that equals the WAL seq covering the exported
        state, so the very next poll tails precisely the records the
        export did not contain.
        """
        export = self._leader.export_sequences()
        restored = self._engine.restore(export["sequences"])
        cursor = int(export["snapshot_version"])
        with self._lock:
            self._applied_seq = cursor
            self._leader_version = cursor
            self._leader_seq = max(self._leader_seq, cursor)
            self._diverged = False
            self._resyncs += 1
            self._last_error = None
            self._last_poll_at = time.time()
            lag = max(0, self._leader_seq - cursor)
        self._persist_cursor(cursor, cursor)
        return {
            "applied": restored,
            "count": restored,
            "applied_seq": cursor,
            "lag": lag,
            "resync": True,
        }

    def run(
        self,
        stop: threading.Event,
        *,
        interval: float = 0.2,
    ) -> None:
        """Poll until ``stop`` is set (the ``repro serve --follow`` loop).

        A full batch polls again immediately (catch-up mode); a short or
        empty one waits ``interval``.  Divergence self-heals with a
        :meth:`resync`; any other serving/transport error is recorded in
        :meth:`status` and retried next round — a follower outlives its
        leader's restarts.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        while not stop.is_set():
            try:
                summary = self.poll()
            except ReplicaDiverged:
                try:
                    self.resync()
                except Exception as error:  # error-ok: tail loop outlives leader restarts; recorded in status()
                    record_swallowed(
                        error,
                        role="follower.tail",
                        site="WalFollower.run.resync",
                        cancellation_ok=True,
                    )
                    with self._lock:
                        self._last_error = str(error)
                stop.wait(interval)
                continue
            except Exception as error:  # error-ok: tail loop outlives leader restarts; recorded in status()
                record_swallowed(
                    error,
                    role="follower.tail",
                    site="WalFollower.run.poll",
                    cancellation_ok=True,
                )
                with self._lock:
                    self._last_error = str(error)
                stop.wait(interval)
                continue
            if summary["count"] < self._batch_limit:
                stop.wait(interval)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def lag(self) -> int:
        """Leader records not yet applied here (as of the last handshake)."""
        with self._lock:
            return max(0, self._leader_seq - self._applied_seq)

    @property
    def applied_seq(self) -> int:
        """The durable cursor: the last leader seq applied locally."""
        with self._lock:
            return self._applied_seq

    def status(self) -> dict[str, Any]:
        """The replication block reported under ``/healthz``."""
        with self._lock:
            return {
                "role": "follower",
                "leader": self._leader_url,
                "applied_seq": self._applied_seq,
                "leader_seq": self._leader_seq,
                "leader_snapshot_version": self._leader_version,
                "lag": max(0, self._leader_seq - self._applied_seq),
                "diverged": self._diverged,
                "polls": self._polls,
                "batches": self._batches,
                "applied_records": self._applied_records,
                "resyncs": self._resyncs,
                "last_error": self._last_error,
                "last_poll_at": self._last_poll_at,
            }
