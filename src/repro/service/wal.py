"""The write-ahead log: fsynced, checksummed mutation records.

The serving engine's snapshots live in memory; without a log, a crash
between an acknowledged ``insert`` and the next explicit ``save()`` loses
the write silently — the worst possible failure for an index whose whole
value is the Lemma 1-3 *no-false-dismissal* guarantee.  The WAL closes the
window: every mutation is appended (and fsynced) *before* the engine
publishes the snapshot that acknowledges it, so the on-disk pair

    ``snapshot.npz``  (last checkpoint)  +  ``wal.log``  (records since)

can always reconstruct the acknowledged state.

**Record format.**  The file starts with an 10-byte magic header; each
record is ``<u32 length><u32 crc32(payload)><payload>`` (little-endian),
the payload being one UTF-8 JSON object::

    {"op": "insert"|"append"|"remove", "id": [type, repr],
     "points": ..., "seq": N}

**Sequence numbers.**  Every appended record is stamped with a monotonic
``seq`` (1-based, per log file).  Seqs survive checkpoint truncation: a
:meth:`WriteAheadLog.reset` leaves behind one *checkpoint marker* frame
(``{"op": "checkpoint", "seq": N}``) recording the last stamped seq, so
the next open resumes the counter instead of restarting at 1.  The marker
is bookkeeping, not a mutation: it never appears in
:attr:`~WriteAheadLog.recovered_records`, never counts toward
``len(log)`` and is never replayed.  The greatest seq truncated away is
the log's :meth:`~WriteAheadLog.horizon` — the oldest *shippable* record
has ``seq == horizon + 1``, and a replica whose applied cursor is below
the horizon can no longer catch up by tailing (it needs a snapshot
resync).  Logs written before seqs existed load fine: their records are
assigned positional seqs ``1..n`` with horizon 0.

**Log shipping.**  :meth:`WriteAheadLog.read_from` re-reads the file and
returns the records after a given seq — lock-free, like
:func:`inspect_wal`, so a follower tailing a live leader never blocks its
writer; a half-written concurrent append shows up as a torn tail and
simply ends the batch early.  :func:`encode_frames` /
:func:`decode_frames` re-use the on-disk CRC framing as the wire format
for shipped batches, so a follower verifies every shipped record with the
same checksum that protects it on disk.

**Torn tails.**  A crash mid-append leaves a short or corrupt final
record.  On open, the log is scanned record by record; the first length
that overruns the file or CRC that mismatches marks the tear, everything
before it is recovered, and the file is truncated back to the last valid
boundary — recovery proceeds instead of refusing to start, and the
truncation can only discard a record that was never acknowledged (the
engine acknowledges only after a successful fsync).

**Idempotent replay.**  :func:`replay_into` applies records so that
replaying the same log twice — or replaying over a snapshot that already
contains a prefix of it, the state a crash *between* checkpoint save and
WAL reset leaves behind — converges to the same state: an ``insert`` of a
present id is skipped, a ``remove`` of an absent id is skipped, and an
``append`` carries the post-append point count so an already-applied
extension is recognised and skipped.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.util.faults import inject
from repro.util.sync import TracedLock

if TYPE_CHECKING:
    from repro.core.database import SequenceDatabase

__all__ = [
    "DurabilityConfig",
    "WalEntryInfo",
    "WalInspection",
    "WalRecord",
    "WriteAheadLog",
    "decode_frames",
    "encode_frames",
    "inspect_wal",
    "replay_into",
]

#: File signature; the trailing newline keeps `head wal.log` readable.
_MAGIC = b"REPROWAL1\n"

#: Per-record header: little-endian payload length then CRC32.
_HEADER = struct.Struct("<II")

#: The ``op`` of a checkpoint marker frame (bookkeeping, never replayed).
_CHECKPOINT_OP = "checkpoint"


@dataclass(frozen=True)
class WalRecord:
    """One logged mutation.

    ``points`` is a nested list (JSON-ready) for ``insert``/``append`` and
    ``None`` for ``remove``; ``length`` is the post-append point count used
    to make ``append`` replay idempotent.  ``seq`` is the log-assigned
    monotonic sequence number (``None`` until :meth:`WriteAheadLog.append`
    stamps it — each log stamps its own seq space, so records shipped from
    another log are re-stamped locally).  ``replica`` optionally tags the
    record with a backend index (the cluster repair journal uses it to
    address one queued op to one replica); :func:`replay_into` ignores it.
    """

    op: str
    sequence_id: object
    points: list[Any] | None = None
    length: int | None = None
    seq: int | None = None
    replica: int | None = None

    def __post_init__(self) -> None:
        if self.op not in ("insert", "append", "remove"):
            raise ValueError(
                f"op must be insert/append/remove, got {self.op!r}"
            )
        if not isinstance(self.sequence_id, (str, int)) or isinstance(
            self.sequence_id, bool
        ):
            raise TypeError(
                "only str/int sequence ids can be logged durably, got "
                f"{type(self.sequence_id).__name__}"
            )
        if self.seq is not None and (
            not isinstance(self.seq, int)
            or isinstance(self.seq, bool)
            or self.seq < 1
        ):
            raise ValueError(
                f"seq must be a positive int or None, got {self.seq!r}"
            )
        if self.replica is not None and (
            not isinstance(self.replica, int)
            or isinstance(self.replica, bool)
            or self.replica < 0
        ):
            raise ValueError(
                f"replica must be an int >= 0 or None, got {self.replica!r}"
            )

    def to_payload(self) -> bytes:
        """Serialise to the on-disk JSON payload."""
        body: dict[str, Any] = {
            "op": self.op,
            "id": [type(self.sequence_id).__name__, str(self.sequence_id)],
        }
        if self.points is not None:
            body["points"] = self.points
        if self.length is not None:
            body["length"] = self.length
        if self.seq is not None:
            body["seq"] = self.seq
        if self.replica is not None:
            body["replica"] = self.replica
        return json.dumps(body, separators=(",", ":")).encode("utf-8")

    @classmethod
    def from_payload(cls, payload: bytes) -> "WalRecord":
        """Rebuild a record from its JSON payload."""
        body = json.loads(payload)
        type_name, raw = body["id"]
        sequence_id: object = int(raw) if type_name == "int" else raw
        return cls(
            op=body["op"],
            sequence_id=sequence_id,
            points=body.get("points"),
            length=body.get("length"),
            seq=body.get("seq"),
            replica=body.get("replica"),
        )


@dataclass(frozen=True)
class DurabilityConfig:
    """Where and how a :class:`~repro.service.engine.QueryEngine` persists.

    Parameters
    ----------
    directory:
        Data directory holding ``snapshot.npz`` (the last checkpoint) and
        ``wal.log`` (records since).  Created if missing.
    fsync:
        Fsync the log after every record (the durable default).  Turning
        it off trades the crash window for write latency — acknowledged
        writes may be lost on power failure, never corrupted.
    checkpoint_every:
        Auto-checkpoint (snapshot save + WAL reset) after this many WAL
        records; ``0`` checkpoints only on :meth:`QueryEngine.checkpoint`
        and close.
    checkpoint_on_close:
        Checkpoint during a clean ``close()`` so restarts replay nothing.
    """

    directory: str | Path
    fsync: bool = True
    checkpoint_every: int = 0
    checkpoint_on_close: bool = True

    def __post_init__(self) -> None:
        if self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )

    @property
    def snapshot_path(self) -> Path:
        """The checkpoint archive inside :attr:`directory`."""
        return Path(self.directory) / "snapshot.npz"

    @property
    def wal_path(self) -> Path:
        """The write-ahead log inside :attr:`directory`."""
        return Path(self.directory) / "wal.log"


def _walk_frames(data: bytes, offset: int) -> Iterator[tuple[int, bytes, int]]:
    """Yield ``(offset, payload, end)`` per intact frame; stop at a tear.

    Stops silently at the first frame whose header overruns the data or
    whose CRC mismatches — the caller decides whether a tear is a
    recoverable boundary (scan, tail read) or an error (shipped batch).
    """
    size = len(data)
    while offset + _HEADER.size <= size:
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > size:
            return
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            return
        yield offset, payload, end
        offset = end


def _marker_seq(payload: bytes) -> int | None:
    """The seq carried by a checkpoint marker payload, else ``None``."""
    try:
        body = json.loads(payload)
    except ValueError:
        return None
    if not isinstance(body, dict) or body.get("op") != _CHECKPOINT_OP:
        return None
    seq = body.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        raise ValueError(f"checkpoint marker carries a bad seq: {seq!r}")
    return seq


class WriteAheadLog:
    """An append-only, CRC-verified record log with torn-tail recovery.

    Opening scans the whole file: valid records are exposed as
    :attr:`recovered_records` (seq-stamped), a torn or corrupt tail is
    truncated at the last valid record boundary, and the seq counter
    resumes from the greatest seq seen (checkpoint markers included).
    Appends go through one file handle kept at end-of-file; each is
    flushed and (by default) fsynced before :meth:`append` returns.
    """

    def __init__(self, path: str | Path, *, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        scanned = self._scan()
        self._recovered, valid_end, existing = scanned[:3]
        self._horizon, self._last_seq = scanned[3:]
        mode = "r+b" if existing else "w+b"
        self._handle = open(self.path, mode)  # noqa: SIM115 (long-lived)
        if not existing:
            self._handle.write(_MAGIC)
            self._handle.flush()
            self._sync()
        else:
            end = self._handle.seek(0, os.SEEK_END)
            if end > valid_end:
                self._handle.truncate(valid_end)
                self._handle.flush()
                self._sync()
        self._handle.seek(0, os.SEEK_END)
        self._records = len(self._recovered)
        self._closed = False
        # The engine serialises appends behind its writer lock, but the
        # log is also poked from shutdown paths and inspection helpers;
        # its own lock makes the file-handle state safe regardless of
        # who calls.  Holding it across the fsync is deliberate — the
        # durability barrier *is* the critical section.
        self._lock = TracedLock("wal.log")

    # ------------------------------------------------------------------
    # Recovery scan
    # ------------------------------------------------------------------
    def _scan(self) -> tuple[list[WalRecord], int, bool, int, int]:
        """Read all valid records.

        Returns ``(records, valid_end, existed, horizon, last_seq)``.
        Checkpoint markers advance ``horizon``/``last_seq`` without
        producing records; legacy records without a stored seq are
        assigned positional seqs.
        """
        if not self.path.exists() or self.path.stat().st_size == 0:
            return [], len(_MAGIC), False, 0, 0
        data = self.path.read_bytes()
        if data[: len(_MAGIC)] != _MAGIC:
            raise ValueError(
                f"{self.path} is not a repro WAL (bad magic header)"
            )
        records: list[WalRecord] = []
        horizon = 0
        last_seq = 0
        offset = len(_MAGIC)
        for _, payload, end in _walk_frames(data, offset):
            try:
                marker = _marker_seq(payload)
                if marker is not None:
                    horizon = marker
                    last_seq = max(last_seq, marker)
                else:
                    record = WalRecord.from_payload(payload)
                    if record.seq is None:
                        record = replace(record, seq=last_seq + 1)
                    records.append(record)
                    last_seq = max(last_seq, record.seq or 0)
            except (ValueError, KeyError, TypeError):
                break  # undecodable payload that happened to pass CRC
            offset = end
        return records, offset, True, horizon, last_seq

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, record: WalRecord) -> int:
        """Write, flush and fsync one record; returns the record count.

        The record is stamped with the log's next seq (any seq it already
        carries — e.g. one assigned by a leader's log and shipped here —
        is replaced: seq spaces are per-log).  On any failure the file is
        truncated back to its pre-record length, so a failed append never
        leaves a torn record for the next append to bury mid-file, and
        the seq counter is not advanced.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("write-ahead log is closed")
            next_seq = self._last_seq + 1
            payload = replace(record, seq=next_seq).to_payload()
            start = self._handle.tell()
            try:
                inject("wal.append")
                self._handle.write(
                    _HEADER.pack(len(payload), zlib.crc32(payload))
                )
                self._handle.write(payload)
                self._handle.flush()
                self._sync()
            except Exception:
                try:
                    self._handle.truncate(start)
                    self._handle.seek(start)
                except OSError:  # pragma: no cover - double fault
                    pass
                raise
            self._records += 1
            self._last_seq = next_seq
            return self._records

    def _sync(self) -> None:
        inject("wal.fsync")
        if self.fsync:
            os.fsync(self._handle.fileno())

    # ------------------------------------------------------------------
    # Tail reads (log shipping)
    # ------------------------------------------------------------------
    @property
    def last_seq(self) -> int:
        """The seq of the most recently stamped record (0 when none ever)."""
        with self._lock:
            return self._last_seq

    def horizon(self) -> int:
        """The greatest seq truncated away by a checkpoint (0 if none).

        Records with ``seq > horizon()`` are still on disk and shippable;
        a follower whose applied cursor is below the horizon cannot catch
        up by tailing and needs a snapshot resync.
        """
        with self._lock:
            return self._horizon

    def read_from(
        self, after_seq: int, *, limit: int | None = None
    ) -> list[WalRecord]:
        """The records with ``seq > after_seq``, in log order.

        Lock-free like :func:`inspect_wal`: the file is re-read in one
        ``read_bytes`` call and walked frame by frame, so tailing a live
        log never blocks (or deadlocks with) its writer.  A torn tail —
        including the half-written frame of a concurrent append — ends
        the batch cleanly at the last valid boundary; the missing record
        is simply picked up by the next call.  Checkpoint markers are
        skipped.  ``limit`` caps the batch size.
        """
        if after_seq < 0:
            raise ValueError(f"after_seq must be >= 0, got {after_seq}")
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be >= 1 or None, got {limit}")
        data = self.path.read_bytes()
        if data[: len(_MAGIC)] != _MAGIC:
            raise ValueError(
                f"{self.path} is not a repro WAL (bad magic header)"
            )
        batch: list[WalRecord] = []
        last_seq = 0
        for _, payload, _ in _walk_frames(data, len(_MAGIC)):
            try:
                marker = _marker_seq(payload)
                if marker is not None:
                    last_seq = max(last_seq, marker)
                    continue
                record = WalRecord.from_payload(payload)
            except (ValueError, KeyError, TypeError):
                break
            if record.seq is None:
                record = replace(record, seq=last_seq + 1)
            last_seq = max(last_seq, record.seq or 0)
            if (record.seq or 0) > after_seq:
                batch.append(record)
                if limit is not None and len(batch) >= limit:
                    break
        return batch

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def recovered_records(self) -> list[WalRecord]:
        """The records recovered by the opening scan (a copy)."""
        return list(self._recovered)

    def __len__(self) -> int:
        """Records in the log (recovered plus appended since open)."""
        with self._lock:
            return self._records

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def reset(self) -> None:
        """Truncate to an empty log (after a successful checkpoint).

        Leaves a checkpoint marker recording the last stamped seq, so the
        counter — and the :meth:`horizon` — survive a restart: every seq
        up to and including ``last_seq`` is now only reachable through
        the checkpoint snapshot, never by tailing this log.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("write-ahead log is closed")
            self._handle.seek(len(_MAGIC))
            self._handle.truncate(len(_MAGIC))
            if self._last_seq > 0:
                payload = json.dumps(
                    {"op": _CHECKPOINT_OP, "seq": self._last_seq},
                    separators=(",", ":"),
                ).encode("utf-8")
                self._handle.write(
                    _HEADER.pack(len(payload), zlib.crc32(payload))
                )
                self._handle.write(payload)
            self._handle.flush()
            self._sync()
            self._records = 0
            self._recovered = []
            self._horizon = self._last_seq

    def close(self) -> None:
        """Close the underlying file handle."""
        with self._lock:
            if not self._closed:
                self._closed = True
                self._handle.close()


# ----------------------------------------------------------------------
# Shipped-batch framing (the wire format of /wal/tail)
# ----------------------------------------------------------------------
def encode_frames(records: Iterable[WalRecord]) -> bytes:
    """Frame seq-stamped records for shipping (same framing as on disk).

    Each record becomes ``<u32 length><u32 crc32(payload)><payload>``, so
    a follower verifies shipped bytes with the same CRC that protects the
    leader's log.  Records must carry their seq — a batch without seqs
    cannot advance a follower's cursor.
    """
    parts: list[bytes] = []
    for record in records:
        if record.seq is None:
            raise ValueError(
                f"cannot ship a record without a seq: {record.op} of "
                f"{record.sequence_id!r}"
            )
        payload = record.to_payload()
        parts.append(_HEADER.pack(len(payload), zlib.crc32(payload)))
        parts.append(payload)
    return b"".join(parts)


def decode_frames(data: bytes) -> list[WalRecord]:
    """Decode a shipped batch, verifying every frame's CRC.

    Strict where the recovery scan is lenient: a shipped batch was framed
    in full by the leader, so *any* tear, CRC mismatch, undecodable
    payload or missing seq is corruption in transit and raises
    :class:`ValueError` — the follower drops the batch and re-tails
    instead of applying a damaged prefix.
    """
    records: list[WalRecord] = []
    offset = 0
    size = len(data)
    while offset < size:
        if offset + _HEADER.size > size:
            raise ValueError(
                f"torn batch: {size - offset} trailing byte(s), frame "
                f"header needs {_HEADER.size}"
            )
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > size:
            raise ValueError(
                f"torn batch: framed length {length} overruns the batch "
                f"by {end - size} byte(s)"
            )
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            raise ValueError("corrupt batch: frame CRC mismatch")
        try:
            record = WalRecord.from_payload(payload)
        except (KeyError, TypeError, ValueError) as error:
            raise ValueError(
                f"undecodable shipped record: {error}"
            ) from error
        if record.seq is None:
            raise ValueError("shipped record carries no seq")
        records.append(record)
        offset = end
    return records


@dataclass(frozen=True)
class WalEntryInfo:
    """One record slot found by :func:`inspect_wal`.

    ``record`` is the decoded mutation when the slot is intact; a torn or
    corrupt slot has ``record=None`` and ``error`` naming what is wrong
    (length overrun, CRC mismatch, undecodable payload).  A checkpoint
    marker slot has ``record=None`` and ``checkpoint_seq`` set to the seq
    the marker preserves across the truncation.
    """

    offset: int
    length: int
    crc_ok: bool
    record: WalRecord | None = None
    error: str | None = None
    checkpoint_seq: int | None = None


@dataclass(frozen=True)
class WalInspection:
    """A read-only forensic scan of a WAL file (``repro wal-inspect``).

    Unlike opening a :class:`WriteAheadLog`, inspection never truncates:
    it reports exactly what is on disk — every valid record, plus the
    torn or corrupt tail entry if one exists — so an operator can look at
    a crashed node's log before recovery rewrites it.  ``horizon`` and
    ``last_seq`` bound the file's shippable seq range: a follower whose
    cursor is outside ``[horizon, last_seq]`` cannot catch up from this
    log.
    """

    path: Path
    size: int
    magic_ok: bool
    valid_bytes: int
    entries: tuple[WalEntryInfo, ...] = ()
    horizon: int = 0
    last_seq: int = 0

    @property
    def torn(self) -> bool:
        """Whether trailing bytes fail to parse as a complete record."""
        return self.valid_bytes < self.size

    @property
    def records(self) -> tuple[WalRecord, ...]:
        """The decodable records, in log order."""
        return tuple(
            entry.record for entry in self.entries if entry.record is not None
        )

    @property
    def clean(self) -> bool:
        """Whether the whole file parses: good magic and no torn tail."""
        return self.magic_ok and not self.torn


def inspect_wal(path: str | Path) -> WalInspection:
    """Scan a WAL file without opening (or repairing) it.

    Walks the record framing byte-for-byte: each entry reports its
    offset, framed length, CRC verdict and decoded record (seq-stamped,
    positionally for legacy records); the first invalid entry (overrunning
    length, CRC mismatch, undecodable JSON) is included with its
    ``error`` and ends the scan — exactly the boundary
    :class:`WriteAheadLog` would truncate to on open.  Checkpoint markers
    appear as entries with ``checkpoint_seq`` set and feed the reported
    ``[horizon, last_seq]`` seq range.

    Strictly read-only: the file is read in one ``read_bytes`` call, no
    lock is taken and no byte is written — a torn tail is *reported*,
    never repaired — so ``repro wal-inspect`` is safe against the live
    log of a running engine and can never block on (or dead-lock with)
    its writer.  ``test_wal_inspect.py`` pins this contract.
    """
    wal_path = Path(path)
    data = wal_path.read_bytes()
    size = len(data)
    magic_ok = data[: len(_MAGIC)] == _MAGIC
    if not magic_ok:
        return WalInspection(
            path=wal_path, size=size, magic_ok=False, valid_bytes=0
        )
    entries: list[WalEntryInfo] = []
    horizon = 0
    last_seq = 0
    offset = len(_MAGIC)
    valid_end = offset
    while offset < size:
        if offset + _HEADER.size > size:
            entries.append(
                WalEntryInfo(
                    offset=offset,
                    length=size - offset,
                    crc_ok=False,
                    error=(
                        f"torn header: {size - offset} trailing byte(s), "
                        f"header needs {_HEADER.size}"
                    ),
                )
            )
            break
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > size:
            entries.append(
                WalEntryInfo(
                    offset=offset,
                    length=length,
                    crc_ok=False,
                    error=(
                        f"torn record: framed length {length} overruns "
                        f"end of file by {end - size} byte(s)"
                    ),
                )
            )
            break
        payload = data[start:end]
        crc_ok = zlib.crc32(payload) == crc
        if not crc_ok:
            entries.append(
                WalEntryInfo(
                    offset=offset,
                    length=length,
                    crc_ok=False,
                    error="CRC mismatch: payload bytes are corrupt",
                )
            )
            break
        try:
            marker = _marker_seq(payload)
            record = (
                None if marker is not None else WalRecord.from_payload(payload)
            )
        except (ValueError, KeyError, TypeError) as error:
            entries.append(
                WalEntryInfo(
                    offset=offset,
                    length=length,
                    crc_ok=True,
                    error=f"undecodable payload: {error}",
                )
            )
            break
        if marker is not None:
            horizon = marker
            last_seq = max(last_seq, marker)
            entries.append(
                WalEntryInfo(
                    offset=offset,
                    length=length,
                    crc_ok=True,
                    checkpoint_seq=marker,
                )
            )
        elif record is not None:
            if record.seq is None:
                record = replace(record, seq=last_seq + 1)
            last_seq = max(last_seq, record.seq or 0)
            entries.append(
                WalEntryInfo(
                    offset=offset, length=length, crc_ok=True, record=record
                )
            )
        offset = end
        valid_end = end
    return WalInspection(
        path=wal_path,
        size=size,
        magic_ok=True,
        valid_bytes=valid_end,
        entries=tuple(entries),
        horizon=horizon,
        last_seq=last_seq,
    )


def replay_into(database: "SequenceDatabase", records: list[WalRecord]) -> int:
    """Apply ``records`` to ``database`` idempotently; returns applied count.

    Records already reflected in the database — an insert whose id is
    present, a remove whose id is absent, an append whose target already
    has at least the recorded point count — are skipped, so replaying a
    log over a snapshot that contains any prefix of it converges to the
    same state (the invariant a crash between checkpoint save and WAL
    reset relies on).  The same skip rules make duplicate *shipped*
    batches harmless: a follower that re-applies records below its cursor
    converges instead of double-applying.
    """
    applied = 0
    for record in records:
        if record.op == "insert":
            if record.sequence_id in database:
                continue
            if record.points is None:
                raise ValueError(
                    f"insert record for {record.sequence_id!r} has no points"
                )
            database.add(record.points, sequence_id=record.sequence_id)
        elif record.op == "remove":
            if record.sequence_id not in database:
                continue
            database.remove(record.sequence_id)
        else:  # append
            if record.sequence_id not in database:
                raise ValueError(
                    f"append record for unknown id {record.sequence_id!r}"
                )
            if record.points is None or record.length is None:
                raise ValueError(
                    f"append record for {record.sequence_id!r} is incomplete"
                )
            if len(database.sequence(record.sequence_id)) >= record.length:
                continue
            database.append_points(record.sequence_id, record.points)
        applied += 1
    return applied
