"""The write-ahead log: fsynced, checksummed mutation records.

The serving engine's snapshots live in memory; without a log, a crash
between an acknowledged ``insert`` and the next explicit ``save()`` loses
the write silently — the worst possible failure for an index whose whole
value is the Lemma 1-3 *no-false-dismissal* guarantee.  The WAL closes the
window: every mutation is appended (and fsynced) *before* the engine
publishes the snapshot that acknowledges it, so the on-disk pair

    ``snapshot.npz``  (last checkpoint)  +  ``wal.log``  (records since)

can always reconstruct the acknowledged state.

**Record format.**  The file starts with an 10-byte magic header; each
record is ``<u32 length><u32 crc32(payload)><payload>`` (little-endian),
the payload being one UTF-8 JSON object::

    {"op": "insert"|"append"|"remove", "id": [type, repr], "points": ...}

**Torn tails.**  A crash mid-append leaves a short or corrupt final
record.  On open, the log is scanned record by record; the first length
that overruns the file or CRC that mismatches marks the tear, everything
before it is recovered, and the file is truncated back to the last valid
boundary — recovery proceeds instead of refusing to start, and the
truncation can only discard a record that was never acknowledged (the
engine acknowledges only after a successful fsync).

**Idempotent replay.**  :func:`replay_into` applies records so that
replaying the same log twice — or replaying over a snapshot that already
contains a prefix of it, the state a crash *between* checkpoint save and
WAL reset leaves behind — converges to the same state: an ``insert`` of a
present id is skipped, a ``remove`` of an absent id is skipped, and an
``append`` carries the post-append point count so an already-applied
extension is recognised and skipped.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.util.faults import inject
from repro.util.sync import TracedLock

if TYPE_CHECKING:
    from repro.core.database import SequenceDatabase

__all__ = [
    "DurabilityConfig",
    "WalEntryInfo",
    "WalInspection",
    "WalRecord",
    "WriteAheadLog",
    "inspect_wal",
    "replay_into",
]

#: File signature; the trailing newline keeps `head wal.log` readable.
_MAGIC = b"REPROWAL1\n"

#: Per-record header: little-endian payload length then CRC32.
_HEADER = struct.Struct("<II")


@dataclass(frozen=True)
class WalRecord:
    """One logged mutation.

    ``points`` is a nested list (JSON-ready) for ``insert``/``append`` and
    ``None`` for ``remove``; ``length`` is the post-append point count used
    to make ``append`` replay idempotent.
    """

    op: str
    sequence_id: object
    points: list[Any] | None = None
    length: int | None = None

    def __post_init__(self) -> None:
        if self.op not in ("insert", "append", "remove"):
            raise ValueError(
                f"op must be insert/append/remove, got {self.op!r}"
            )
        if not isinstance(self.sequence_id, (str, int)) or isinstance(
            self.sequence_id, bool
        ):
            raise TypeError(
                "only str/int sequence ids can be logged durably, got "
                f"{type(self.sequence_id).__name__}"
            )

    def to_payload(self) -> bytes:
        """Serialise to the on-disk JSON payload."""
        body: dict[str, Any] = {
            "op": self.op,
            "id": [type(self.sequence_id).__name__, str(self.sequence_id)],
        }
        if self.points is not None:
            body["points"] = self.points
        if self.length is not None:
            body["length"] = self.length
        return json.dumps(body, separators=(",", ":")).encode("utf-8")

    @classmethod
    def from_payload(cls, payload: bytes) -> "WalRecord":
        """Rebuild a record from its JSON payload."""
        body = json.loads(payload)
        type_name, raw = body["id"]
        sequence_id: object = int(raw) if type_name == "int" else raw
        return cls(
            op=body["op"],
            sequence_id=sequence_id,
            points=body.get("points"),
            length=body.get("length"),
        )


@dataclass(frozen=True)
class DurabilityConfig:
    """Where and how a :class:`~repro.service.engine.QueryEngine` persists.

    Parameters
    ----------
    directory:
        Data directory holding ``snapshot.npz`` (the last checkpoint) and
        ``wal.log`` (records since).  Created if missing.
    fsync:
        Fsync the log after every record (the durable default).  Turning
        it off trades the crash window for write latency — acknowledged
        writes may be lost on power failure, never corrupted.
    checkpoint_every:
        Auto-checkpoint (snapshot save + WAL reset) after this many WAL
        records; ``0`` checkpoints only on :meth:`QueryEngine.checkpoint`
        and close.
    checkpoint_on_close:
        Checkpoint during a clean ``close()`` so restarts replay nothing.
    """

    directory: str | Path
    fsync: bool = True
    checkpoint_every: int = 0
    checkpoint_on_close: bool = True

    def __post_init__(self) -> None:
        if self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )

    @property
    def snapshot_path(self) -> Path:
        """The checkpoint archive inside :attr:`directory`."""
        return Path(self.directory) / "snapshot.npz"

    @property
    def wal_path(self) -> Path:
        """The write-ahead log inside :attr:`directory`."""
        return Path(self.directory) / "wal.log"


class WriteAheadLog:
    """An append-only, CRC-verified record log with torn-tail recovery.

    Opening scans the whole file: valid records are exposed as
    :attr:`recovered_records`, and a torn or corrupt tail is truncated at
    the last valid record boundary.  Appends go through one file handle
    kept at end-of-file; each is flushed and (by default) fsynced before
    :meth:`append` returns.
    """

    def __init__(self, path: str | Path, *, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._recovered, valid_end, existing = self._scan()
        mode = "r+b" if existing else "w+b"
        self._handle = open(self.path, mode)  # noqa: SIM115 (long-lived)
        if not existing:
            self._handle.write(_MAGIC)
            self._handle.flush()
            self._sync()
        else:
            end = self._handle.seek(0, os.SEEK_END)
            if end > valid_end:
                self._handle.truncate(valid_end)
                self._handle.flush()
                self._sync()
        self._handle.seek(0, os.SEEK_END)
        self._records = len(self._recovered)
        self._closed = False
        # The engine serialises appends behind its writer lock, but the
        # log is also poked from shutdown paths and inspection helpers;
        # its own lock makes the file-handle state safe regardless of
        # who calls.  Holding it across the fsync is deliberate — the
        # durability barrier *is* the critical section.
        self._lock = TracedLock("wal.log")

    # ------------------------------------------------------------------
    # Recovery scan
    # ------------------------------------------------------------------
    def _scan(self) -> tuple[list[WalRecord], int, bool]:
        """Read all valid records; returns (records, valid_end, existed)."""
        if not self.path.exists() or self.path.stat().st_size == 0:
            return [], len(_MAGIC), False
        data = self.path.read_bytes()
        if data[: len(_MAGIC)] != _MAGIC:
            raise ValueError(
                f"{self.path} is not a repro WAL (bad magic header)"
            )
        records: list[WalRecord] = []
        offset = len(_MAGIC)
        while offset + _HEADER.size <= len(data):
            length, crc = _HEADER.unpack_from(data, offset)
            start = offset + _HEADER.size
            end = start + length
            if end > len(data):
                break  # torn tail: length overruns the file
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                break  # corrupt record: stop at the last valid boundary
            try:
                records.append(WalRecord.from_payload(payload))
            except (ValueError, KeyError, TypeError):
                break  # undecodable payload that happened to pass CRC
            offset = end
        return records, offset, True

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, record: WalRecord) -> int:
        """Write, flush and fsync one record; returns the record count.

        On any failure the file is truncated back to its pre-record
        length, so a failed append never leaves a torn record for the
        next append to bury mid-file.
        """
        payload = record.to_payload()
        with self._lock:
            if self._closed:
                raise RuntimeError("write-ahead log is closed")
            start = self._handle.tell()
            try:
                inject("wal.append")
                self._handle.write(
                    _HEADER.pack(len(payload), zlib.crc32(payload))
                )
                self._handle.write(payload)
                self._handle.flush()
                self._sync()
            except Exception:
                try:
                    self._handle.truncate(start)
                    self._handle.seek(start)
                except OSError:  # pragma: no cover - double fault
                    pass
                raise
            self._records += 1
            return self._records

    def _sync(self) -> None:
        inject("wal.fsync")
        if self.fsync:
            os.fsync(self._handle.fileno())

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def recovered_records(self) -> list[WalRecord]:
        """The records recovered by the opening scan (a copy)."""
        return list(self._recovered)

    def __len__(self) -> int:
        """Records in the log (recovered plus appended since open)."""
        with self._lock:
            return self._records

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def reset(self) -> None:
        """Truncate to an empty log (after a successful checkpoint)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("write-ahead log is closed")
            self._handle.seek(len(_MAGIC))
            self._handle.truncate(len(_MAGIC))
            self._handle.flush()
            self._sync()
            self._records = 0
            self._recovered = []

    def close(self) -> None:
        """Close the underlying file handle."""
        with self._lock:
            if not self._closed:
                self._closed = True
                self._handle.close()


@dataclass(frozen=True)
class WalEntryInfo:
    """One record slot found by :func:`inspect_wal`.

    ``record`` is the decoded mutation when the slot is intact; a torn or
    corrupt slot has ``record=None`` and ``error`` naming what is wrong
    (length overrun, CRC mismatch, undecodable payload).
    """

    offset: int
    length: int
    crc_ok: bool
    record: WalRecord | None = None
    error: str | None = None


@dataclass(frozen=True)
class WalInspection:
    """A read-only forensic scan of a WAL file (``repro wal-inspect``).

    Unlike opening a :class:`WriteAheadLog`, inspection never truncates:
    it reports exactly what is on disk — every valid record, plus the
    torn or corrupt tail entry if one exists — so an operator can look at
    a crashed node's log before recovery rewrites it.
    """

    path: Path
    size: int
    magic_ok: bool
    valid_bytes: int
    entries: tuple[WalEntryInfo, ...] = ()

    @property
    def torn(self) -> bool:
        """Whether trailing bytes fail to parse as a complete record."""
        return self.valid_bytes < self.size

    @property
    def records(self) -> tuple[WalRecord, ...]:
        """The decodable records, in log order."""
        return tuple(
            entry.record for entry in self.entries if entry.record is not None
        )

    @property
    def clean(self) -> bool:
        """Whether the whole file parses: good magic and no torn tail."""
        return self.magic_ok and not self.torn


def inspect_wal(path: str | Path) -> WalInspection:
    """Scan a WAL file without opening (or repairing) it.

    Walks the record framing byte-for-byte: each entry reports its
    offset, framed length, CRC verdict and decoded record; the first
    invalid entry (overrunning length, CRC mismatch, undecodable JSON)
    is included with its ``error`` and ends the scan — exactly the
    boundary :class:`WriteAheadLog` would truncate to on open.

    Strictly read-only: the file is read in one ``read_bytes`` call, no
    lock is taken and no byte is written — a torn tail is *reported*,
    never repaired — so ``repro wal-inspect`` is safe against the live
    log of a running engine and can never block on (or dead-lock with)
    its writer.  ``test_wal_inspect.py`` pins this contract.
    """
    wal_path = Path(path)
    data = wal_path.read_bytes()
    size = len(data)
    magic_ok = data[: len(_MAGIC)] == _MAGIC
    if not magic_ok:
        return WalInspection(
            path=wal_path, size=size, magic_ok=False, valid_bytes=0
        )
    entries: list[WalEntryInfo] = []
    offset = len(_MAGIC)
    valid_end = offset
    while offset < size:
        if offset + _HEADER.size > size:
            entries.append(
                WalEntryInfo(
                    offset=offset,
                    length=size - offset,
                    crc_ok=False,
                    error=(
                        f"torn header: {size - offset} trailing byte(s), "
                        f"header needs {_HEADER.size}"
                    ),
                )
            )
            break
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > size:
            entries.append(
                WalEntryInfo(
                    offset=offset,
                    length=length,
                    crc_ok=False,
                    error=(
                        f"torn record: framed length {length} overruns "
                        f"end of file by {end - size} byte(s)"
                    ),
                )
            )
            break
        payload = data[start:end]
        crc_ok = zlib.crc32(payload) == crc
        if not crc_ok:
            entries.append(
                WalEntryInfo(
                    offset=offset,
                    length=length,
                    crc_ok=False,
                    error="CRC mismatch: payload bytes are corrupt",
                )
            )
            break
        try:
            record = WalRecord.from_payload(payload)
        except (ValueError, KeyError, TypeError) as error:
            entries.append(
                WalEntryInfo(
                    offset=offset,
                    length=length,
                    crc_ok=True,
                    error=f"undecodable payload: {error}",
                )
            )
            break
        entries.append(
            WalEntryInfo(
                offset=offset, length=length, crc_ok=True, record=record
            )
        )
        offset = end
        valid_end = end
    return WalInspection(
        path=wal_path,
        size=size,
        magic_ok=True,
        valid_bytes=valid_end,
        entries=tuple(entries),
    )


def replay_into(database: "SequenceDatabase", records: list[WalRecord]) -> int:
    """Apply ``records`` to ``database`` idempotently; returns applied count.

    Records already reflected in the database — an insert whose id is
    present, a remove whose id is absent, an append whose target already
    has at least the recorded point count — are skipped, so replaying a
    log over a snapshot that contains any prefix of it converges to the
    same state (the invariant a crash between checkpoint save and WAL
    reset relies on).
    """
    applied = 0
    for record in records:
        if record.op == "insert":
            if record.sequence_id in database:
                continue
            if record.points is None:
                raise ValueError(
                    f"insert record for {record.sequence_id!r} has no points"
                )
            database.add(record.points, sequence_id=record.sequence_id)
        elif record.op == "remove":
            if record.sequence_id not in database:
                continue
            database.remove(record.sequence_id)
        else:  # append
            if record.sequence_id not in database:
                raise ValueError(
                    f"append record for unknown id {record.sequence_id!r}"
                )
            if record.points is None or record.length is None:
                raise ValueError(
                    f"append record for {record.sequence_id!r} is incomplete"
                )
            if len(database.sequence(record.sequence_id)) >= record.length:
                continue
            database.append_points(record.sequence_id, record.points)
        applied += 1
    return applied
