"""A fault-tolerant urllib client for the ``repro serve`` HTTP endpoint.

Mirrors the :class:`~repro.service.engine.QueryEngine` surface over JSON
and rebuilds the typed serving errors from the server's error payloads,
so ``except Overloaded`` works the same whether the engine is embedded or
behind HTTP.  stdlib-only, like the server.

A ``search``/``knn`` call given a ``timeout`` treats it as an
**end-to-end budget**: the client stamps a :class:`~repro.util.budget.
Deadline` when the request starts, and every hop debits it — the socket
timeout is clamped to the remaining budget, each (re)send rewrites the
body ``timeout`` to what is left and mirrors it in an ``X-Repro-Budget``
header, and retry backoff sleeps spend from the same budget.  A request
whose budget runs out between attempts raises :class:`DeadlineExceeded`
locally rather than dispatching work no caller will wait for.

Three optional resilience layers wrap the transport:

* a :class:`RetryPolicy` — exponential backoff with *full jitter*
  (AWS-style: each delay is uniform in ``[0, cap]``, decorrelating
  synchronized clients), honouring the server's ``Retry-After``.  Only
  *idempotent reads* (``healthz``, ``stats``, ``search``, ``knn``) are
  retried, and only on typed-retryable failures: :class:`Overloaded`
  (the server shed the request before doing work) and transport-level
  errors (connection refused/reset, dropped responses, socket timeouts).
  Writes are never retried — an ``insert`` whose response was dropped
  may have been applied, and blind replay would turn one mutation into
  two.
* a :class:`CircuitBreaker` — after ``failure_threshold`` consecutive
  transport failures the circuit opens and requests fast-fail locally
  with :class:`CircuitOpen` (no bytes hit the wire) until
  ``reset_timeout`` elapses; then one half-open probe decides between
  closing the circuit and re-opening it.  Any HTTP response — even an
  error status — proves the server reachable and counts as breaker
  success.
* a :class:`RetryBudget` — a token bucket capping the retry *rate*
  across all of a client's requests.  Each request deposits a fraction
  of a token, each retry spends a whole one, so sustained retrying
  cannot amplify offered load by more than ``fill_per_request`` (~10%
  by default) no matter what ``max_attempts`` allows; when the bucket
  runs dry the client raises the typed
  :class:`RetryBudgetExhausted` instead of piling on.

All layers surface counters through :meth:`ServiceClient.transport_stats`.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, TypedDict, cast

import numpy as np

from repro.service.errors import (
    CircuitOpen,
    DeadlineExceeded,
    EngineClosed,
    FollowerReadOnly,
    Overloaded,
    RepairOverflow,
    ReplicaDiverged,
    RetryBudgetExhausted,
    ServiceError,
    ShardUnavailable,
    SnapshotRequired,
    WriteQuorumFailed,
)
from repro.util.budget import Deadline
from repro.util.errtrace import translated
from repro.util.rng import ensure_rng
from repro.util.sync import TracedLock
from repro.util.validation import check_threshold

if TYPE_CHECKING:
    import numpy.typing as npt

    #: Anything with a ``uniform(low, high) -> float``-like method; in
    #: production this is a :class:`numpy.random.Generator` from
    #: :func:`repro.util.rng.ensure_rng`, but a seeded
    #: :class:`random.Random` works too (handy in tests).
    UniformRng = np.random.Generator | random.Random

__all__ = [
    "TRANSPORT_ERRORS",
    "CircuitBreaker",
    "EngineStatsPayload",
    "RetryBudget",
    "RetryPolicy",
    "ServiceClient",
]


class EngineStatsPayload(TypedDict, total=False):
    """The shape of ``GET /stats`` (``QueryEngine.stats()`` over JSON).

    ``total=False`` because the block grows additively across versions —
    an old client reading a new server (or vice versa) sees a subset,
    never a type error.  Fields used to stamp benchmark trajectory
    records — ``uptime_s``, ``repro_version``, ``snapshot_version`` —
    are part of the stable surface.
    """

    requests: dict[str, int]
    requests_total: int
    completed: int
    failures: dict[str, int]
    rejected_overload: int
    deadline_exceeded: int
    wasted_work: int
    cancelled: int
    admission: dict[str, Any]
    latency_ms: dict[str, float]
    cache: dict[str, Any]
    cache_lru: dict[str, Any]
    snapshots_published: int
    shed: dict[str, int]
    degraded_transitions: dict[str, int]
    wal_appends: int
    queue_depth: int
    workers: int
    queue_cap: int
    snapshot_version: int
    sequences: int
    segments: int
    cache_entries: int
    cache_capacity: int
    uptime_s: float
    repro_version: str
    degraded: bool
    durability: dict[str, Any]

#: Transport-level failures a retry may safely cover for idempotent reads
#: (and the cluster coordinator treats as grounds for replica failover).
TRANSPORT_ERRORS = (
    urllib.error.URLError,
    ConnectionError,
    TimeoutError,
    http.client.HTTPException,
)
_TRANSPORT_ERRORS = TRANSPORT_ERRORS

#: Slack added to the budget when clamping the *socket* timeout: when a
#: request's budget expires server-side, the server's typed 504 response
#: needs a network round trip to arrive — without slack the socket gives
#: up at the same instant and a clean ``DeadlineExceeded`` degrades into
#: a raw ``TimeoutError``.
_BUDGET_SOCKET_SLACK = 0.25


def _typed_error(status: int, detail: dict) -> Exception:
    """Rebuild the server-side exception from an error payload."""
    message = str(detail.get("message", f"HTTP {status}"))
    if status == 429:
        retry_after = detail.get("retry_after")
        return Overloaded(
            message,
            queue_depth=int(detail.get("queue_depth", 0)),
            capacity=int(detail.get("capacity", 0)),
            retry_after=None if retry_after is None else float(retry_after),
        )
    if status in (504, 408):
        # 504 is the current mapping for DeadlineExceeded; 408 is what
        # servers one release back sent — keep parsing it until every
        # server in a mixed-version fleet has rolled forward.
        return DeadlineExceeded(message, timeout=float(detail.get("timeout", 0.0)))
    if status == 503:
        kind = detail.get("type")
        if kind == "ShardUnavailable":
            return ShardUnavailable(
                message,
                missing_shards=[
                    int(shard) for shard in detail.get("missing_shards", ())
                ],
            )
        if kind == "WriteQuorumFailed":
            return WriteQuorumFailed(
                message,
                shard=int(detail.get("shard", -1)),
                acks=int(detail.get("acks", 0)),
                required=int(detail.get("required", 0)),
            )
        if kind == "RepairOverflow":
            return RepairOverflow(
                message,
                backend=int(detail.get("backend", -1)),
                pending=int(detail.get("pending", 0)),
                capacity=int(detail.get("capacity", 0)),
            )
        return EngineClosed(message)
    if status == 410:
        return SnapshotRequired(
            message,
            horizon=int(detail.get("horizon", 0)),
            after_seq=int(detail.get("after_seq", 0)),
        )
    if status == 403:
        return FollowerReadOnly(message, leader=detail.get("leader"))
    if status == 400:
        return ValueError(message)
    if status in (404, 409):
        # A 409 is either a duplicate-id insert (KeyError, mirroring the
        # embedded engine) or a replication handshake mismatch — the
        # payload type disambiguates.
        if status == 409 and detail.get("type") == "ReplicaDiverged":
            return ReplicaDiverged(
                message,
                leader_seq=int(detail.get("leader_seq", 0)),
                follower_seq=int(detail.get("follower_seq", 0)),
            )
        return KeyError(message)
    return ServiceError(f"HTTP {status}: {message}")


def _raise_typed(
    status: int, detail: dict, cause: BaseException | None = None
) -> None:
    """Raise the typed rebuild of an error payload, chaining ``cause``.

    ``cause`` is the transport-layer original (the ``HTTPError`` the
    payload rode in on); chaining it keeps the real fault visible under
    the typed costume (the REP402 invariant, enforced at runtime by
    :func:`repro.util.errtrace.translated`).
    """
    error = _typed_error(status, detail)
    if cause is not None:
        raise translated(
            cause,
            error,
            role="client.translate",
            site="ServiceClient._raise_typed",
        ) from cause
    raise error


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full jitter for idempotent reads.

    The delay before retry ``i`` (zero-based) is drawn uniformly from
    ``[0, min(max_delay, base_delay * multiplier**i)]``; when the failed
    attempt carried a server ``Retry-After`` hint (an :class:`Overloaded`
    with ``retry_after``), the delay is at least that hint.

    Parameters
    ----------
    max_attempts:
        Total tries, the first included; ``1`` disables retrying.
    base_delay / multiplier / max_delay:
        The backoff schedule's cap sequence, in seconds.
    jitter:
        Draw uniformly from ``[0, cap]`` (full jitter) instead of
        sleeping the cap itself.
    honor_retry_after:
        Respect the server's ``Retry-After`` as a lower bound.
    seed:
        Seed for the jitter RNG (threaded through
        :func:`repro.util.rng.ensure_rng`) — set it in tests so backoff
        schedules are reproducible instead of sleeping on real jitter.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: bool = True
    honor_retry_after: bool = True
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )

    def delay(
        self,
        retry_index: int,
        rng: UniformRng,
        *,
        retry_after: float | None = None,
    ) -> float:
        """The sleep (seconds) before zero-based retry ``retry_index``."""
        if retry_index < 0:
            raise ValueError(f"retry_index must be >= 0, got {retry_index}")
        cap = min(self.max_delay, self.base_delay * self.multiplier**retry_index)
        chosen = float(rng.uniform(0.0, cap)) if self.jitter else cap
        if self.honor_retry_after and retry_after is not None:
            chosen = max(chosen, retry_after)
        return chosen


class CircuitBreaker:
    """A consecutive-failure circuit breaker with a half-open probe.

    Thread-safe.  States: ``closed`` (normal), ``open`` (fast-fail until
    ``reset_timeout`` since the trip), ``half-open`` (one probe request
    allowed; its outcome closes or re-opens the circuit).

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the circuit.
    reset_timeout:
        Seconds an open circuit waits before allowing the probe.
    clock:
        Monotonic time source — injectable for deterministic tests.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock: Any = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout <= 0:
            raise ValueError(
                f"reset_timeout must be positive, got {reset_timeout}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = TracedLock("client.breaker")
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        self._opens = 0

    @property
    def state(self) -> str:
        """The current state: ``closed``, ``open`` or ``half-open``."""
        with self._lock:
            return self._state

    def before_request(self) -> None:
        """Gate one request; raises :class:`CircuitOpen` when open."""
        with self._lock:
            if self._state == self.OPEN:
                elapsed = self._clock() - self._opened_at
                if elapsed < self.reset_timeout:
                    remaining = self.reset_timeout - elapsed
                    raise CircuitOpen(
                        f"circuit open after {self._failures} consecutive "
                        f"failures; probe allowed in {remaining:.2f}s",
                        retry_after=remaining,
                    )
                self._state = self.HALF_OPEN
                self._probing = False
            if self._state == self.HALF_OPEN:
                if self._probing:
                    raise CircuitOpen(
                        "circuit half-open with a probe already in flight",
                        retry_after=self.reset_timeout,
                    )
                self._probing = True

    def record_success(self) -> None:
        """An attempt reached the server: close the circuit."""
        with self._lock:
            self._state = self.CLOSED
            self._failures = 0
            self._probing = False

    def record_failure(self) -> None:
        """A transport failure: trip the circuit at the threshold."""
        with self._lock:
            self._failures += 1
            self._probing = False
            if (
                self._state == self.HALF_OPEN
                or self._failures >= self.failure_threshold
            ):
                if self._state != self.OPEN:
                    self._opens += 1
                self._state = self.OPEN
                self._opened_at = self._clock()

    def stats(self) -> dict:
        """State, consecutive-failure count, and times opened."""
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "opens": self._opens,
            }


class RetryBudget:
    """A token bucket bounding the retry rate across all requests.

    Thread-safe.  The bucket starts full (short failure bursts may still
    retry freely); each request deposits ``fill_per_request`` tokens
    (saturating at ``capacity``) and each retry withdraws one, so under
    sustained failure the retry rate converges to ``fill_per_request``
    retries per request — bounded amplification, instead of every client
    multiplying its traffic by ``max_attempts`` at the worst moment.

    Parameters
    ----------
    capacity:
        Maximum tokens (also the initial fill): the burst of retries the
        client may issue back-to-back.
    fill_per_request:
        Tokens deposited per request — the steady-state retry fraction.
    """

    def __init__(
        self, *, capacity: float = 10.0, fill_per_request: float = 0.1
    ) -> None:
        if capacity < 1.0:
            raise ValueError(
                f"capacity must be >= 1 (one whole retry), got {capacity}"
            )
        if fill_per_request < 0:
            raise ValueError(
                f"fill_per_request must be >= 0, got {fill_per_request}"
            )
        self.capacity = float(capacity)
        self.fill_per_request = float(fill_per_request)
        self._lock = TracedLock("client.retry_budget")
        self._tokens = float(capacity)
        self._spent = 0
        self._denied = 0

    @property
    def tokens(self) -> float:
        """Tokens currently in the bucket."""
        with self._lock:
            return self._tokens

    def deposit(self) -> None:
        """Credit one request's worth of retry allowance."""
        with self._lock:
            self._tokens = min(
                self.capacity, self._tokens + self.fill_per_request
            )

    def try_spend(self) -> bool:
        """Withdraw one retry token; ``False`` when the bucket is dry."""
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                self._spent += 1
                return True
            self._denied += 1
            return False

    def stats(self) -> dict:
        """Tokens, capacity, and spend/deny counts."""
        with self._lock:
            return {
                "tokens": self._tokens,
                "capacity": self.capacity,
                "spent": self._spent,
                "denied": self._denied,
            }


class ServiceClient:
    """Talks JSON to a running ``repro serve`` endpoint.

    Parameters
    ----------
    base_url:
        e.g. ``"http://127.0.0.1:8765"`` (trailing slash optional).
    timeout:
        Socket-level timeout (seconds) for each HTTP call — distinct from
        the per-request serving deadline, which travels in the body.
    retry:
        Optional :class:`RetryPolicy`; ``None`` (default) fails fast like
        the plain urllib client.  Only idempotent reads are retried.
    breaker:
        Optional :class:`CircuitBreaker` shared by all this client's
        requests; ``None`` disables circuit breaking.
    retry_budget:
        Optional :class:`RetryBudget` token bucket; ``None`` (default)
        leaves the retry rate bounded only by ``retry.max_attempts``.
        Share one bucket between clients to bound a whole process's
        retry amplification.
    rng:
        Jitter RNG override — anything :func:`repro.util.rng.ensure_rng`
        accepts (an int seed, a ``numpy.random.Generator``, ``None``).
        Defaults to a generator seeded from ``retry.seed``, so a seeded
        policy alone already makes backoff deterministic.
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 30.0,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        retry_budget: RetryBudget | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry = retry
        self.breaker = breaker
        self.retry_budget = retry_budget
        if rng is None and retry is not None:
            rng = retry.seed
        self._rng = ensure_rng(rng)
        self._sleep = time.sleep  # monkeypatchable seam for tests
        self._counters_lock = TracedLock("client.counters")
        self._counters: dict[str, float] = {
            "requests": 0,
            "attempts": 0,
            "retries": 0,
            "transport_errors": 0,
            "overloaded": 0,
            "circuit_open_rejections": 0,
            "retry_budget_exhausted": 0,
            "deadline_exhausted": 0,
            "retry_wait_s": 0.0,
        }

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        """Liveness probe: status, degraded flag, counts, snapshot version."""
        reply = self._request("GET", "/healthz", idempotent=True)
        return dict(reply)

    def stats(self) -> EngineStatsPayload:
        """The engine's full metrics block (see :class:`EngineStatsPayload`)."""
        reply = self._request("GET", "/stats", idempotent=True)
        return cast(EngineStatsPayload, dict(reply))

    def search(
        self,
        points: npt.ArrayLike,
        epsilon: float,
        *,
        find_intervals: bool = True,
        timeout: float | None = None,
    ) -> dict:
        """Range search; returns the JSON payload (answers, candidates,
        cache outcome, per-id intervals keyed by ``str(sequence_id)``)."""
        epsilon = check_threshold(epsilon)
        body: dict[str, Any] = {
            "points": self._point_list(points),
            "epsilon": epsilon,
            "find_intervals": find_intervals,
        }
        if timeout is not None:
            body["timeout"] = timeout
        reply = self._request("POST", "/search", body, idempotent=True)
        return dict(reply)

    def knn(
        self,
        points: npt.ArrayLike,
        k: int,
        *,
        timeout: float | None = None,
    ) -> list[tuple[float, object]]:
        """The ``k`` nearest sequences as ``(distance, sequence_id)``."""
        body: dict[str, Any] = {"points": self._point_list(points), "k": k}
        if timeout is not None:
            body["timeout"] = timeout
        payload = self._request("POST", "/knn", body, idempotent=True)
        return [
            (float(entry["distance"]), entry["sequence_id"])
            for entry in payload["neighbors"]
        ]

    def insert(
        self, points: npt.ArrayLike, sequence_id: object = None
    ) -> object:
        """Insert a sequence; returns its id as assigned by the server.

        Never retried: a dropped response does not prove the insert was
        not applied, and replaying it could raise a spurious 409 or —
        with a server-assigned id — store the sequence twice.
        """
        body: dict[str, Any] = {"points": self._point_list(points)}
        if sequence_id is not None:
            body["sequence_id"] = sequence_id
        return self._request("POST", "/insert", body)["sequence_id"]

    def append(self, sequence_id: object, points: npt.ArrayLike) -> dict:
        """Extend a stored sequence with new points (never retried)."""
        reply = self._request(
            "POST",
            "/append",
            {
                "sequence_id": sequence_id,
                "points": self._point_list(points),
            },
        )
        return dict(reply)

    def remove(self, sequence_id: object) -> dict:
        """Remove a sequence from subsequent snapshots (never retried)."""
        reply = self._request("POST", "/remove", {"sequence_id": sequence_id})
        return dict(reply)

    # ------------------------------------------------------------------
    # Replication (the follower's view of a leader)
    # ------------------------------------------------------------------
    def wal_tail(
        self,
        after_seq: int,
        *,
        snapshot_version: int | None = None,
        limit: int = 512,
    ) -> dict:
        """Tail the server's WAL after ``after_seq`` (``POST /wal/tail``).

        The handshake and batch shape mirror
        :meth:`~repro.service.engine.QueryEngine.wal_tail`; typed
        rejections come back as :class:`ReplicaDiverged` (409) and
        :class:`SnapshotRequired` (410).  Idempotent: tailing reads the
        log without moving any server-side cursor, so retrying a dropped
        response re-ships the same records.
        """
        body: dict[str, Any] = {"after_seq": after_seq, "limit": limit}
        if snapshot_version is not None:
            body["snapshot_version"] = snapshot_version
        reply = self._request("POST", "/wal/tail", body, idempotent=True)
        return dict(reply)

    def export_sequences(
        self,
        sequence_ids: list[object] | None = None,
        *,
        include_points: bool = True,
    ) -> dict:
        """The server's full corpus export (``GET /sequences``), for resync.

        The HTTP endpoint always ships the complete corpus with points;
        the ``sequence_ids``/``include_points`` parameters exist to match
        the :class:`~repro.service.follower.ReplicationLeader` protocol
        and are applied client-side.
        """
        reply = dict(self._request("GET", "/sequences", idempotent=True))
        sequences = list(reply.get("sequences", []))
        if sequence_ids is not None:
            wanted = set(sequence_ids)
            sequences = [
                entry for entry in sequences if entry.get("id") in wanted
            ]
        if not include_points:
            sequences = [
                {key: value for key, value in entry.items() if key != "points"}
                for entry in sequences
            ]
        reply["sequences"] = sequences
        return reply

    def restore(self, sequences: list[dict]) -> dict:
        """Replace the server's corpus with an export (``POST /restore``).

        The snapshot-resync write path: ``sequences`` is the
        ``"sequences"`` list of an :meth:`export_sequences` reply.  Not
        idempotent in the retry sense (each call republishes a snapshot
        version), so it is never auto-retried; a follower-mode server
        rejects it with :class:`FollowerReadOnly` like any other write.
        """
        return dict(self._request("POST", "/restore", {"sequences": sequences}))

    # ------------------------------------------------------------------
    # Resilience metrics
    # ------------------------------------------------------------------
    def transport_stats(self) -> dict:
        """Client-side counters: attempts, retries, waits, circuit state."""
        with self._counters_lock:
            block: dict[str, Any] = dict(self._counters)
        if self.breaker is not None:
            block["circuit"] = self.breaker.stats()
        if self.retry_budget is not None:
            block["retry_budget"] = self.retry_budget.stats()
        return block

    def _count(self, key: str, amount: float = 1) -> None:
        with self._counters_lock:
            self._counters[key] += amount

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    @staticmethod
    def _point_list(points: npt.ArrayLike) -> list:
        array = np.asarray(points, dtype=np.float64)
        listed = array.tolist()
        if not isinstance(listed, list):
            raise ValueError("points must be a 1-D or 2-D array")
        return listed

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        *,
        idempotent: bool = False,
    ) -> Any:
        self._count("requests")
        if self.retry_budget is not None:
            self.retry_budget.deposit()
        budget = None if body is None else body.get("timeout")
        # One deadline for the whole call: every attempt and every
        # backoff sleep debits it, so retries shrink the budget the
        # server sees instead of granting each attempt a fresh one.
        deadline = Deadline.after(None if budget is None else float(budget))
        attempts = (
            self.retry.max_attempts
            if (self.retry is not None and idempotent)
            else 1
        )
        last_error: Exception | None = None
        for attempt in range(attempts):
            if attempt:
                if (
                    self.retry_budget is not None
                    and not self.retry_budget.try_spend()
                ):
                    self._count("retry_budget_exhausted")
                    budget_stats = self.retry_budget.stats()
                    raise RetryBudgetExhausted(
                        f"retry budget exhausted before retry {attempt} of "
                        f"{method} {path} ({budget_stats['tokens']:.2f} of "
                        f"{budget_stats['capacity']:.0f} tokens left)",
                        tokens=budget_stats["tokens"],
                        capacity=budget_stats["capacity"],
                    ) from last_error
                self._count("retries")
                retry_after = getattr(last_error, "retry_after", None)
                wait = self.retry.delay(  # type: ignore[union-attr]
                    attempt - 1,
                    self._rng,
                    retry_after=retry_after,
                )
                remaining = deadline.remaining()
                if remaining is not None:
                    wait = min(wait, max(0.0, remaining))
                self._count("retry_wait_s", wait)
                self._sleep(wait)
            remaining = deadline.remaining()
            if remaining is not None and remaining <= 0.0:
                self._count("deadline_exhausted")
                raise DeadlineExceeded(
                    f"{method} {path}: request budget spent after "
                    f"{attempt} attempt(s); not dispatching another",
                    timeout=float(budget),
                ) from last_error
            try:
                return self._request_once(method, path, body, deadline)
            except Overloaded as error:
                self._count("overloaded")
                last_error = error
                if attempt == attempts - 1:
                    raise
            except CircuitOpen:
                raise
            except _TRANSPORT_ERRORS as error:
                last_error = error
                if attempt == attempts - 1:
                    raise
        raise ServiceError(  # pragma: no cover - loop always returns/raises
            f"retry loop exhausted for {method} {path}"
        )

    def _request_once(
        self,
        method: str,
        path: str,
        body: dict | None,
        deadline: Deadline | None = None,
    ) -> Any:
        if self.breaker is not None:
            try:
                self.breaker.before_request()
            except CircuitOpen:
                self._count("circuit_open_rejections")
                raise
        self._count("attempts")
        headers = {"Content-Type": "application/json"}
        socket_timeout = self.timeout
        remaining = None if deadline is None else deadline.remaining()
        if remaining is not None:
            # This attempt gets what is left of the end-to-end budget:
            # rewrite the body timeout (the server's serving deadline),
            # mirror it in the budget header, and never let the socket
            # outlive the budget.
            remaining = max(remaining, 1e-3)
            body = {**(body or {}), "timeout": remaining}
            headers["X-Repro-Budget"] = f"{remaining:.6f}"
            socket_timeout = min(
                socket_timeout, remaining + _BUDGET_SOCKET_SLACK
            )
        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers=headers,
        )
        try:
            with urllib.request.urlopen(request, timeout=socket_timeout) as reply:
                payload = json.loads(reply.read())
        except urllib.error.HTTPError as error:
            # An HTTP error status is still a response: the server is
            # reachable, so the breaker treats it as success.
            if self.breaker is not None:
                self.breaker.record_success()
            raw = error.read()
            try:
                detail = json.loads(raw).get("error", {})
            except (json.JSONDecodeError, AttributeError):
                detail = {"message": raw.decode("utf-8", "replace")}
            if "retry_after" not in detail:
                header = error.headers.get("Retry-After")
                if header is not None:
                    detail["retry_after"] = header
            _raise_typed(error.code, detail, cause=error)
            raise  # unreachable: _raise_typed always raises
        except _TRANSPORT_ERRORS:
            self._count("transport_errors")
            if self.breaker is not None:
                self.breaker.record_failure()
            raise
        if self.breaker is not None:
            self.breaker.record_success()
        return payload
