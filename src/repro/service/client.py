"""A minimal urllib client for the ``repro serve`` HTTP endpoint.

Mirrors the :class:`~repro.service.engine.QueryEngine` surface over JSON
and rebuilds the typed serving errors from the server's error payloads,
so ``except Overloaded`` works the same whether the engine is embedded or
behind HTTP.  stdlib-only, like the server.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.service.errors import (
    DeadlineExceeded,
    EngineClosed,
    Overloaded,
    ServiceError,
)
from repro.util.validation import check_threshold

if TYPE_CHECKING:
    import numpy.typing as npt

__all__ = ["ServiceClient"]


def _raise_typed(status: int, detail: dict) -> None:
    """Rebuild the server-side exception from an error payload."""
    message = str(detail.get("message", f"HTTP {status}"))
    if status == 429:
        raise Overloaded(
            message,
            queue_depth=int(detail.get("queue_depth", 0)),
            capacity=int(detail.get("capacity", 0)),
        )
    if status == 408:
        raise DeadlineExceeded(message, timeout=float(detail.get("timeout", 0.0)))
    if status == 503:
        raise EngineClosed(message)
    if status == 400:
        raise ValueError(message)
    if status in (404, 409):
        raise KeyError(message)
    raise ServiceError(f"HTTP {status}: {message}")


class ServiceClient:
    """Talks JSON to a running ``repro serve`` endpoint.

    Parameters
    ----------
    base_url:
        e.g. ``"http://127.0.0.1:8765"`` (trailing slash optional).
    timeout:
        Socket-level timeout (seconds) for each HTTP call — distinct from
        the per-request serving deadline, which travels in the body.
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        """Liveness probe: status, sequence count, snapshot version."""
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        """The engine's full metrics block."""
        return self._request("GET", "/stats")

    def search(
        self,
        points: npt.ArrayLike,
        epsilon: float,
        *,
        find_intervals: bool = True,
        timeout: float | None = None,
    ) -> dict:
        """Range search; returns the JSON payload (answers, candidates,
        cache outcome, per-id intervals keyed by ``str(sequence_id)``)."""
        epsilon = check_threshold(epsilon)
        body: dict[str, Any] = {
            "points": self._point_list(points),
            "epsilon": epsilon,
            "find_intervals": find_intervals,
        }
        if timeout is not None:
            body["timeout"] = timeout
        return self._request("POST", "/search", body)

    def knn(
        self,
        points: npt.ArrayLike,
        k: int,
        *,
        timeout: float | None = None,
    ) -> list[tuple[float, object]]:
        """The ``k`` nearest sequences as ``(distance, sequence_id)``."""
        body: dict[str, Any] = {"points": self._point_list(points), "k": k}
        if timeout is not None:
            body["timeout"] = timeout
        payload = self._request("POST", "/knn", body)
        return [
            (float(entry["distance"]), entry["sequence_id"])
            for entry in payload["neighbors"]
        ]

    def insert(
        self, points: npt.ArrayLike, sequence_id: object = None
    ) -> object:
        """Insert a sequence; returns its id as assigned by the server."""
        body: dict[str, Any] = {"points": self._point_list(points)}
        if sequence_id is not None:
            body["sequence_id"] = sequence_id
        return self._request("POST", "/insert", body)["sequence_id"]

    def remove(self, sequence_id: object) -> dict:
        """Remove a sequence from subsequent snapshots."""
        return self._request("POST", "/remove", {"sequence_id": sequence_id})

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    @staticmethod
    def _point_list(points: npt.ArrayLike) -> list:
        array = np.asarray(points, dtype=np.float64)
        listed = array.tolist()
        if not isinstance(listed, list):
            raise ValueError("points must be a 1-D or 2-D array")
        return listed

    def _request(
        self, method: str, path: str, body: dict | None = None
    ) -> Any:
        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                return json.loads(reply.read())
        except urllib.error.HTTPError as error:
            payload = error.read()
            try:
                detail = json.loads(payload).get("error", {})
            except (json.JSONDecodeError, AttributeError):
                detail = {"message": payload.decode("utf-8", "replace")}
            _raise_typed(error.code, detail)
            raise  # unreachable: _raise_typed always raises
