"""The ε-aware LRU result cache of the query engine.

Correctness rests on the monotonicity the contract layer already enforces
(Lemmas 1-3 of the paper): the Phase-2 candidate set and the Phase-3
answer set both *shrink* as ε shrinks.  A cached result computed at
threshold ε' therefore bounds every request at ε <= ε' from above:

* the exact candidate set at ε is ``{s in candidates(ε') : min Dmbr <= ε}``
  — no index probe needed, because any sequence outside ``candidates(ε')``
  has ``min Dmbr > ε' >= ε``;
* the exact answer set at ε is obtained by re-running Phase 3
  (:meth:`~repro.core.search.SimilaritySearch.match_candidate`) over that
  candidate set only — Phases 1 and 2, the index-bound part of the search,
  are skipped entirely.

Entries are keyed by a fingerprint of the query points and pinned to the
engine's snapshot version: a write publishes a new snapshot and, for the
affected sequence id only, publishes a *patched copy* of each entry
(remove the id, then re-examine it against the entry's stored query
partition at the entry's ε') stamped with the new version — so a lookup
matches only entries coherent with the snapshot the request runs on,
readers still holding the pre-write entry keep a state exact for their
snapshot, and no write ever flushes the whole cache.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.search import SimilaritySearch
from repro.core.solution_interval import IntervalSet
from repro.util.freeze import deep_freeze, freeze, freeze_checks_enabled
from repro.util.sync import TracedLock
from repro.util.validation import check_threshold

if TYPE_CHECKING:
    from repro.core.partitioning import PartitionedSequence

__all__ = ["CacheEntry", "EpsilonCache", "query_fingerprint"]


def query_fingerprint(points: np.ndarray) -> str:
    """A stable content hash of a query's point array (shape included)."""
    digest = hashlib.sha256()
    digest.update(str(points.shape).encode())
    digest.update(np.ascontiguousarray(points, dtype=np.float64).tobytes())
    return digest.hexdigest()


@dataclass
class CacheEntry:
    """One cached search: the query's partition plus exact result sets.

    ``candidates``/``answers``/``intervals`` are exact for the snapshot
    identified by ``version`` at threshold ``epsilon`` — the patching in
    :meth:`EpsilonCache.apply_write` maintains that invariant across
    snapshot swaps.
    """

    query_partition: PartitionedSequence
    epsilon: float
    find_intervals: bool
    candidates: set = field(default_factory=set)
    answers: set = field(default_factory=set)
    intervals: dict[object, IntervalSet] = field(default_factory=dict)
    version: int = 0
    dimension: int = 0


def _published(entry: CacheEntry, site: str) -> CacheEntry:
    """The entry object actually shared with concurrent readers.

    Storing transfers ownership of the entry to the cache, so under
    ``REPRO_FREEZE_CHECKS`` its result sets are frozen *in place* before
    publication: any later in-place patching of a shared entry (the bug
    shape :meth:`EpsilonCache.apply_write` exists to avoid) raises
    :class:`~repro.util.freeze.FrozenWriteViolation` instead of silently
    corrupting readers still holding the entry.  The disabled path
    returns the entry untouched.
    """
    if not freeze_checks_enabled():
        return entry
    entry.candidates = freeze(entry.candidates, role="cache.entry", site=site)
    entry.answers = freeze(entry.answers, role="cache.entry", site=site)
    entry.intervals = deep_freeze(
        dict(entry.intervals), role="cache.entry", site=site
    )
    return entry


class EpsilonCache:
    """A bounded LRU of :class:`CacheEntry` keyed by query fingerprint.

    Thread-safety: every public method takes the internal lock; the engine
    additionally serialises :meth:`apply_write` behind its writer lock so
    patching and version bumps are atomic with the snapshot swap.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = TracedLock("cache.entries")
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        # Traffic counters, mutated only under self._lock; a "refine" is
        # an ε-monotonic hit (entry computed at a wider threshold, so the
        # engine re-runs Phase 3 over the cached candidate set).
        self._lookups = 0
        self._hits = 0
        self._refines = 0
        self._misses = 0
        self._stores = 0
        self._store_races = 0
        self._evictions = 0
        self._patches = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def lookup(
        self, key: str, epsilon: float, version: int
    ) -> CacheEntry | None:
        """The entry usable for ``(key, epsilon)`` on snapshot ``version``.

        Usable means: same query fingerprint, computed at a threshold
        ``epsilon' >= epsilon`` (ε-monotonic reuse), and coherent with the
        requested snapshot version.  A usable entry is promoted to
        most-recently-used.
        """
        epsilon = check_threshold(epsilon)
        with self._lock:
            self._lookups += 1
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            if entry.version != version or entry.epsilon < epsilon:
                self._misses += 1
                return None
            self._hits += 1
            if entry.epsilon > epsilon:
                self._refines += 1
            self._entries.move_to_end(key)
            return entry

    def store(self, key: str, entry: CacheEntry, version: int) -> bool:
        """Insert ``entry`` unless it is already stale.

        Returns whether the entry was stored; an entry computed against an
        older snapshot than ``version`` (a writer won the race while the
        search ran) is dropped rather than poisoning the cache.  An
        existing entry for the same query is replaced only by a same-or-
        wider threshold, so a tight search never evicts the wide result
        that can serve it.
        """
        with self._lock:
            if entry.version != version:
                self._store_races += 1
                return False
            current = self._entries.get(key)
            if (
                current is not None
                and current.version == version
                and current.epsilon > entry.epsilon
            ):
                self._entries.move_to_end(key)
                self._store_races += 1
                return False
            self._entries[key] = _published(entry, "EpsilonCache.store")
            self._entries.move_to_end(key)
            self._stores += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            return True

    def clear(self) -> None:
        """Drop every entry."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Traffic counters, read atomically under the cache lock.

        ``hits`` includes ``refines`` (a refine *is* an ε-monotonic hit
        that skipped Phases 1–2); ``store_races`` counts stores dropped
        because a concurrent writer made the result stale or a wider
        entry already covered it.
        """
        with self._lock:
            return {
                "lookups": self._lookups,
                "hits": self._hits,
                "refines": self._refines,
                "misses": self._misses,
                "stores": self._stores,
                "store_races": self._store_races,
                "evictions": self._evictions,
                "patches": self._patches,
            }

    # ------------------------------------------------------------------
    # Write-through patching
    # ------------------------------------------------------------------
    def apply_write(
        self,
        sequence_id: object,
        search: SimilaritySearch,
        new_version: int,
    ) -> int:
        """Re-reconcile every entry with a written sequence id.

        Called by the engine (under its writer lock) after building the
        new snapshot but before publishing it.  For each entry: drop the
        id from all result sets, then — if the id still exists in the new
        snapshot — re-run the two pruning levels for that single sequence
        at the entry's threshold and re-admit it where it qualifies, and
        publish the patch as a *new* :class:`CacheEntry` stamped with
        ``new_version``.

        Only entries coherent with the pre-write snapshot
        (``version == new_version - 1``) are patched: a single-id patch
        is exact only on top of an exact base.  Any other entry is
        evicted — it lost a race with this writer (a search that ran on
        an older snapshot stored its result between this writer's cache
        patch and its snapshot publish) and silently stamping it would
        hide every write it never saw.

        The old entry object is never mutated: a reader that looked it up
        against the previous snapshot may still be materialising a result
        from its sets, and that result must stay exact for *that*
        snapshot.  Entry replacement mirrors the engine's own
        copy-on-write snapshot swap (and keeps each key's LRU position).
        Returns the number of entries re-examined.
        """
        patched = 0
        with self._lock:
            for key, entry in list(self._entries.items()):
                if entry.version != new_version - 1:
                    del self._entries[key]
                    self._evictions += 1
                    continue
                candidates = set(entry.candidates)
                answers = set(entry.answers)
                intervals = dict(entry.intervals)
                candidates.discard(sequence_id)
                answers.discard(sequence_id)
                intervals.pop(sequence_id, None)
                if sequence_id in search.database:
                    if search.candidate_within(
                        entry.query_partition, sequence_id, entry.epsilon
                    ):
                        candidates.add(sequence_id)
                        matched, interval = search.match_candidate(
                            entry.query_partition,
                            sequence_id,
                            entry.epsilon,
                            find_intervals=entry.find_intervals,
                        )
                        if matched:
                            answers.add(sequence_id)
                            if entry.find_intervals:
                                intervals[sequence_id] = interval
                    patched += 1
                    self._patches += 1
                self._entries[key] = _published(
                    CacheEntry(
                        query_partition=entry.query_partition,
                        epsilon=entry.epsilon,
                        find_intervals=entry.find_intervals,
                        candidates=candidates,
                        answers=answers,
                        intervals=intervals,
                        version=new_version,
                        dimension=entry.dimension,
                    ),
                    "EpsilonCache.apply_write",
                )
        return patched
