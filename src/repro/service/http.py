"""A stdlib-only HTTP/JSON front end for :class:`QueryEngine`.

One small :class:`~http.server.ThreadingHTTPServer` exposing the engine's
operations as JSON endpoints — no web framework, no third-party
dependency, suitable for experiments and smoke tests rather than the open
internet:

==========  ======  ====================================================
route       method  body / response
==========  ======  ====================================================
/healthz    GET     liveness: ``{"status": "ok", ...}`` plus durability
                    lag (``wal_records``, ``last_checkpoint_version``)
                    and, in follower mode, a ``replication`` block with
                    the applied cursor and lag
/stats      GET     the engine's :meth:`QueryEngine.stats` block
/sequences  GET     full corpus export for snapshot resync
                    (:meth:`QueryEngine.export_sequences`)
/search     POST    ``{"points", "epsilon", "find_intervals"?, "timeout"?}``
/knn        POST    ``{"points", "k", "timeout"?}``
                    (both honour an ``X-Repro-Budget`` header: the
                    effective serving deadline is the *smaller* of body
                    timeout and header budget)
/insert     POST    ``{"points", "sequence_id"?}``
/append     POST    ``{"sequence_id", "points"}``
/remove     POST    ``{"sequence_id"}``
/restore    POST    ``{"sequences": [export entries]}`` — replace the
                    corpus with an exported one (cluster resync)
/wal/tail   POST    ``{"after_seq", "snapshot_version"?, "limit"?}`` —
                    the log-shipping handshake plus a CRC-framed batch
                    (:meth:`QueryEngine.wal_tail`)
==========  ======  ====================================================

Typed serving errors map onto status codes — :class:`Overloaded` → 429
(with a ``Retry-After`` header derived from queue depth), :class:`
DeadlineExceeded` → 504 (the *server* ran out of the request's budget —
Gateway Timeout — not 408, which blames the client for sending slowly;
clients keep parsing the legacy 408 for one release), :class:`EngineClosed`
/ :class:`ShardUnavailable`
/ :class:`WriteQuorumFailed` / :class:`RepairOverflow` → 503,
:class:`ReplicaDiverged` → 409, :class:`SnapshotRequired` → 410 (the WAL
tail is *gone*, not merely busy), :class:`FollowerReadOnly` → 403, bad
input → 400, duplicate insert id → 409, unknown id → 404 — and every
error body is ``{"error": {"type", "message", ...}}`` so clients can
rebuild the typed exception (:mod:`repro.service.client` does exactly
that).

A server given a :class:`~repro.service.follower.WalFollower` runs in
**follower mode**: ``/insert``/``/append``/``/remove`` are rejected with
:class:`FollowerReadOnly` (state advances only through log shipping —
a direct write would fork the follower's history from its leader's WAL)
while every read route keeps serving, and ``/healthz`` gains the
follower's replication status so the cluster layer can route
bounded-staleness reads by lag.

The handler/server split is reusable: :class:`JsonRequestHandler` carries
the JSON plumbing (body parsing, typed error mapping, drain-aware
dispatch) and :class:`DrainingHTTPServer` the in-flight tracking, so the
cluster coordinator's endpoint (:mod:`repro.cluster.http`) serves the
same wire protocol from the same base classes.

Shutdown is graceful: :meth:`DrainingHTTPServer.drain` waits for
in-flight requests to finish (new requests on kept-alive connections are
answered with a typed 503 once draining starts), so a request racing
SIGTERM gets a real response — a result or ``EngineClosed`` — never a
connection reset.  ``repro serve --drain-timeout`` wires this into the
CLI via :func:`shutdown_gracefully`.

Sequence ids survive the JSON round trip when they are strings, numbers,
booleans or null; solution-interval maps are keyed by ``str(sequence_id)``
because JSON object keys must be strings.
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Callable, cast

import numpy as np

from repro.service.engine import QueryEngine, ServiceResponse
from repro.service.errors import (
    DeadlineExceeded,
    EngineClosed,
    FollowerReadOnly,
    Overloaded,
    RepairOverflow,
    ReplicaDiverged,
    ServiceError,
    ShardUnavailable,
    SnapshotRequired,
    WriteQuorumFailed,
)
from repro.service.faults import inject
from repro.util.errtrace import record_propagated
from repro.util.sync import TracedLock
from repro.util.validation import check_threshold

if TYPE_CHECKING:
    from repro.service.follower import WalFollower

__all__ = [
    "DrainingHTTPServer",
    "JsonRequestHandler",
    "ServiceHandler",
    "ServiceServer",
    "error_headers",
    "error_payload",
    "error_status",
    "healthz_payload",
    "knn_payload",
    "read_points",
    "request_budget",
    "required_field",
    "search_payload",
    "serve",
    "shutdown_gracefully",
]


def error_payload(error: Exception) -> dict:
    """The JSON body describing a failed request."""
    detail: dict[str, Any] = {
        "type": type(error).__name__,
        "message": str(error.args[0]) if error.args else str(error),
    }
    if isinstance(error, Overloaded):
        detail["queue_depth"] = error.queue_depth
        detail["capacity"] = error.capacity
        if error.retry_after is not None:
            detail["retry_after"] = error.retry_after
    if isinstance(error, DeadlineExceeded):
        detail["timeout"] = error.timeout
    if isinstance(error, ShardUnavailable):
        detail["missing_shards"] = list(error.missing_shards)
    if isinstance(error, WriteQuorumFailed):
        detail["shard"] = error.shard
        detail["acks"] = error.acks
        detail["required"] = error.required
    if isinstance(error, ReplicaDiverged):
        detail["leader_seq"] = error.leader_seq
        detail["follower_seq"] = error.follower_seq
    if isinstance(error, SnapshotRequired):
        detail["horizon"] = error.horizon
        detail["after_seq"] = error.after_seq
    if isinstance(error, RepairOverflow):
        detail["backend"] = error.backend
        detail["pending"] = error.pending
        detail["capacity"] = error.capacity
    if isinstance(error, FollowerReadOnly) and error.leader is not None:
        detail["leader"] = error.leader
    return {"error": detail}


def error_headers(error: Exception) -> dict[str, str]:
    """Extra response headers for a failed request (429 Retry-After)."""
    if isinstance(error, Overloaded) and error.retry_after is not None:
        # RFC 9110 Retry-After is integral delay-seconds; round up so the
        # header never tells a client to come back sooner than the hint.
        return {"Retry-After": str(max(1, math.ceil(error.retry_after)))}
    return {}


def error_status(error: Exception, op: str) -> int:
    """Map an exception to its HTTP status code."""
    if isinstance(error, Overloaded):
        return 429
    if isinstance(error, DeadlineExceeded):
        # 504 Gateway Timeout: the server spent the request's budget.
        # (Previous releases sent 408; the client parses both.)
        return 504
    if isinstance(
        error,
        (EngineClosed, ShardUnavailable, WriteQuorumFailed, RepairOverflow),
    ):
        return 503
    if isinstance(error, ReplicaDiverged):
        return 409
    if isinstance(error, SnapshotRequired):
        # 410 Gone: the requested WAL tail was checkpointed away and will
        # never come back — retrying the same cursor is pointless.
        return 410
    if isinstance(error, FollowerReadOnly):
        return 403
    if isinstance(error, ServiceError):
        return 500
    if isinstance(error, KeyError):
        # add() rejects duplicates with KeyError; lookups raise it for
        # unknown ids — conflict on insert, not-found everywhere else.
        return 409 if op == "insert" else 404
    if isinstance(error, (TypeError, ValueError)):
        return 400
    return 500


def required_field(body: dict, name: str) -> Any:
    """A required JSON field; missing fields are a 400, not a 404/409."""
    if name not in body:
        raise ValueError(f"missing required field {name!r}")
    return body[name]


def read_points(body: dict) -> np.ndarray:
    """The request's point array as float64."""
    return np.asarray(required_field(body, "points"), dtype=np.float64)


def request_budget(headers: Any, body: dict | None) -> float | None:
    """The effective serving deadline of one read request, in seconds.

    The smaller of the body ``timeout`` and the ``X-Repro-Budget``
    header (whichever are present; ``None`` when neither is).  The
    header is what a budget-aware client re-stamps on every attempt, so
    when both disagree the header is the *fresher* number — but taking
    the min keeps the server honest against either field lying large.
    """
    candidates = []
    timeout = None if body is None else body.get("timeout")
    if timeout is not None:
        candidates.append(float(timeout))
    header = headers.get("X-Repro-Budget")
    if header is not None:
        candidates.append(float(header))
    return min(candidates) if candidates else None


def _intervals_payload(result_intervals: dict) -> dict[str, list]:
    """Solution intervals as a JSON object keyed by ``str(sequence_id)``."""
    return {
        str(sid): [[start, stop] for start, stop in interval.intervals]
        for sid, interval in result_intervals.items()
    }


def healthz_payload(
    engine: QueryEngine, follower: "WalFollower | None" = None
) -> dict:
    """The ``/healthz`` body: liveness plus durability lag.

    ``wal_records`` is the number of acknowledged writes not yet folded
    into a checkpoint — the durability lag an operator (or the cluster
    health tracker) watches; ``last_checkpoint_version`` /
    ``checkpoints`` date the most recent checkpoint.  A follower-mode
    server adds a ``replication`` block (:meth:`WalFollower.status`) so
    the cluster layer can route bounded-staleness reads by ``lag``.
    """
    if engine.closed:
        status = "closed"
    elif engine.degraded:
        status = "degraded"
    else:
        status = "ok"
    payload = {
        "status": status,
        "degraded": engine.degraded,
        "sequences": len(engine),
        "dimension": engine.dimension,
        "snapshot_version": engine.snapshot_version,
        "queue_depth": engine.queue_depth,
        "durable": engine.durable,
        "wal_records": engine.wal_records,
        "checkpoints": engine.checkpoints,
        "last_checkpoint_version": engine.last_checkpoint_version,
    }
    if follower is not None:
        payload["replication"] = follower.status()
    return payload


def search_payload(
    response: ServiceResponse, *, find_intervals: bool
) -> dict:
    """The ``/search`` body for one engine response (transport shape)."""
    result = response.result
    payload = {
        "answers": list(result.answers),
        "candidates": list(result.candidates),
        "cache": response.cache,
        "snapshot_version": response.snapshot_version,
        "stats": {
            "query_segments": result.stats.query_segments,
            "node_accesses": result.stats.node_accesses,
            "dnorm_evaluations": result.stats.dnorm_evaluations,
        },
    }
    if find_intervals:
        payload["intervals"] = _intervals_payload(result.solution_intervals)
    return payload


def knn_payload(neighbors: list[tuple[float, object]]) -> dict:
    """The ``/knn`` body for one neighbor list (transport shape)."""
    return {
        "neighbors": [
            {"distance": distance, "sequence_id": sid}
            for distance, sid in neighbors
        ]
    }


class JsonRequestHandler(BaseHTTPRequestHandler):
    """JSON route dispatch with typed error mapping and drain awareness.

    Subclasses declare ``get_routes`` / ``post_routes`` mapping paths to
    handler-method *names*; each handler takes the parsed JSON body and
    returns the response payload.  Exceptions map to status codes via
    :func:`error_status` and serialise via :func:`error_payload`.
    """

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    #: path -> bound-method name, filled in by subclasses.
    get_routes: dict[str, str] = {}
    post_routes: dict[str, str] = {}

    # ------------------------------------------------------------------
    # HTTP verbs
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server naming convention)
        self._dispatch("GET", self.get_routes)

    def do_POST(self) -> None:  # noqa: N802 (http.server naming convention)
        self._dispatch("POST", self.post_routes)

    def _dispatch(self, verb: str, routes: dict[str, str]) -> None:
        name = routes.get(self.path)
        if name is None:
            self._send_json(
                404,
                {
                    "error": {
                        "type": "NotFound",
                        "message": f"no such route: {verb} {self.path}",
                    }
                },
            )
            return
        self._handle(self.path.lstrip("/"), getattr(self, name))

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length", "0") or "0")
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ValueError(f"request body is not valid JSON: {error}") from error
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        return body

    def _handle(self, op: str, route: Callable[[dict], dict]) -> None:
        server = cast("DrainingHTTPServer", self.server)
        server.request_started()
        try:
            if server.draining:
                # Kept-alive connections can deliver requests after the
                # accept loop stopped; answer with a typed 503 instead of
                # racing the engine teardown.
                self.close_connection = True
                self._send_json(
                    503,
                    error_payload(
                        EngineClosed("server is draining for shutdown")
                    ),
                )
                return
            try:
                body = self._read_body()
                payload = route(body)
            except Exception as error:  # error-ok: reporting boundary — every error maps to a typed status payload
                record_propagated(
                    error, role="http.boundary", site=f"http.{op}"
                )
                self._send_json(
                    error_status(error, op),
                    error_payload(error),
                    headers=error_headers(error),
                )
                return
            self._send_json(200, payload)
        finally:
            server.request_finished()

    def _send_json(
        self,
        status: int,
        payload: dict,
        headers: dict[str, str] | None = None,
    ) -> None:
        inject("http.response")
        data = json.dumps(payload, default=str).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args: Any) -> None:
        """Suppress per-request stderr noise unless the server is verbose."""
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)


class ServiceHandler(JsonRequestHandler):
    """Dispatches the engine route table against ``self.server.engine``."""

    get_routes = {
        "/healthz": "_healthz",
        "/stats": "_stats",
        "/sequences": "_export",
    }
    post_routes = {
        "/search": "_search",
        "/knn": "_knn",
        "/insert": "_insert",
        "/append": "_append",
        "/remove": "_remove",
        "/restore": "_restore",
        "/wal/tail": "_wal_tail",
    }

    @property
    def engine(self) -> QueryEngine:
        """The engine owned by the enclosing :class:`ServiceServer`."""
        return cast("ServiceServer", self.server).engine

    @property
    def follower(self) -> "WalFollower | None":
        """The follower attachment, when serving in follower mode."""
        return cast("ServiceServer", self.server).follower

    def _check_writable(self, op: str) -> None:
        follower = self.follower
        if follower is not None:
            status = follower.status()
            raise FollowerReadOnly(
                f"{op} rejected: this server is a follower (state advances "
                "only through log shipping; write to the leader instead)",
                leader=status.get("leader"),
            )

    # ------------------------------------------------------------------
    # Route bodies
    # ------------------------------------------------------------------
    def _healthz(self, body: dict) -> dict:
        return healthz_payload(self.engine, self.follower)

    def _stats(self, body: dict) -> dict:
        return self.engine.stats()

    def _search(self, body: dict) -> dict:
        epsilon = check_threshold(float(required_field(body, "epsilon")))
        find_intervals = bool(body.get("find_intervals", True))
        response = self.engine.search_detailed(
            read_points(body),
            epsilon,
            find_intervals=find_intervals,
            timeout=request_budget(self.headers, body),
        )
        return search_payload(response, find_intervals=find_intervals)

    def _knn(self, body: dict) -> dict:
        neighbors = self.engine.knn(
            read_points(body),
            int(required_field(body, "k")),
            timeout=request_budget(self.headers, body),
        )
        return knn_payload(neighbors)

    def _export(self, body: dict) -> dict:
        return self.engine.export_sequences()

    def _wal_tail(self, body: dict) -> dict:
        after_seq = int(required_field(body, "after_seq"))
        version = body.get("snapshot_version")
        limit = int(body.get("limit", 512))
        return self.engine.wal_tail(
            after_seq,
            snapshot_version=None if version is None else int(version),
            limit=limit,
        )

    def _insert(self, body: dict) -> dict:
        self._check_writable("insert")
        sequence_id = self.engine.insert(
            read_points(body), sequence_id=body.get("sequence_id")
        )
        return {
            "sequence_id": sequence_id,
            "sequences": len(self.engine),
            "snapshot_version": self.engine.snapshot_version,
        }

    def _append(self, body: dict) -> dict:
        self._check_writable("append")
        sequence_id = required_field(body, "sequence_id")
        self.engine.append(sequence_id, read_points(body))
        return {
            "sequence_id": sequence_id,
            "sequences": len(self.engine),
            "snapshot_version": self.engine.snapshot_version,
        }

    def _remove(self, body: dict) -> dict:
        self._check_writable("remove")
        sequence_id = required_field(body, "sequence_id")
        self.engine.remove(sequence_id)
        return {
            "sequence_id": sequence_id,
            "sequences": len(self.engine),
            "snapshot_version": self.engine.snapshot_version,
        }

    def _restore(self, body: dict) -> dict:
        self._check_writable("restore")
        sequences = required_field(body, "sequences")
        if not isinstance(sequences, list):
            raise ValueError("sequences must be a list of export entries")
        restored = self.engine.restore(sequences)
        return {
            "restored": restored,
            "sequences": len(self.engine),
            "snapshot_version": self.engine.snapshot_version,
        }


class DrainingHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server with in-flight tracking and graceful drain."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        handler: type[BaseHTTPRequestHandler],
        *,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, handler)
        self.verbose = verbose
        self.draining = False
        self.dropped_responses = 0
        self._inflight = 0
        self._inflight_lock = TracedLock("http.inflight")
        self._idle = threading.Event()
        self._idle.set()

    # ------------------------------------------------------------------
    # In-flight request tracking (drives graceful drain)
    # ------------------------------------------------------------------
    def request_started(self) -> None:
        """Count one request entering a handler."""
        with self._inflight_lock:
            self._inflight += 1
            self._idle.clear()

    def request_finished(self) -> None:
        """Count one request leaving its handler."""
        with self._inflight_lock:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    @property
    def inflight(self) -> int:
        """Requests currently inside a handler."""
        with self._inflight_lock:
            return self._inflight

    def drain(self, timeout: float = 10.0) -> bool:
        """Refuse new requests and wait for in-flight ones to finish.

        Returns ``True`` once no request is in a handler, ``False`` if
        some were still running when ``timeout`` expired (they keep
        running; closing the engine afterwards turns them into typed
        ``EngineClosed`` responses, not connection resets).
        """
        with self._inflight_lock:
            self.draining = True
        return self._idle.wait(timeout)

    def handle_error(
        self, request: Any, client_address: Any
    ) -> None:
        """Count dropped connections instead of spamming stderr.

        A handler thread that dies mid-response (fault injection, client
        hangup) closes the connection without a reply; that is the
        failure mode the retrying client exists for, not a server bug
        worth a traceback — unless the server is verbose.
        """
        with self._inflight_lock:
            self.dropped_responses += 1
        if self.verbose:
            super().handle_error(request, client_address)


class ServiceServer(DrainingHTTPServer):
    """A threading HTTP server bound to one :class:`QueryEngine`.

    The server does *not* own the engine's lifecycle: closing the server
    stops accepting connections, but the caller decides when to
    ``engine.close()``.  Use :func:`shutdown_gracefully` (or the CLI,
    which wraps it) to tear both down in the order that lets in-flight
    requests drain.
    """

    def __init__(
        self,
        address: tuple[str, int],
        engine: QueryEngine,
        *,
        verbose: bool = False,
        follower: "WalFollower | None" = None,
    ) -> None:
        super().__init__(address, ServiceHandler, verbose=verbose)
        self.engine = engine
        #: When set, the server runs in follower mode: direct writes are
        #: rejected (``FollowerReadOnly``) and ``/healthz`` reports the
        #: follower's replication cursor and lag.
        self.follower = follower


def serve(
    engine: QueryEngine,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    follower: "WalFollower | None" = None,
) -> ServiceServer:
    """Bind a :class:`ServiceServer` (``port=0`` picks a free port).

    Returns the bound server without starting its accept loop; call
    ``serve_forever()`` (typically on a thread) and ``shutdown()`` /
    ``server_close()`` yourself, or use the ``repro serve`` CLI which
    wires signal handling around exactly this function.
    """
    return ServiceServer(
        (host, port), engine, verbose=verbose, follower=follower
    )


def shutdown_gracefully(
    server: ServiceServer,
    engine: QueryEngine,
    *,
    drain_timeout: float = 10.0,
) -> bool:
    """Tear down a served engine without dropping in-flight requests.

    The ordering is the contract: (1) stop the accept loop, (2) drain —
    in-flight requests finish, late arrivals on kept-alive connections
    get a typed 503, (3) close the engine (a drain stragglers' requests
    turn into ``EngineClosed``, and a durable engine checkpoints), then
    (4) close the listening socket.  Returns whether the drain completed
    within ``drain_timeout``.
    """
    server.shutdown()
    drained = server.drain(drain_timeout)
    engine.close()
    server.server_close()
    return drained
