"""``python -m repro`` — dispatch to the command-line interface."""

import sys

from repro.cli import main

__all__: list[str] = []

if __name__ == "__main__":
    sys.exit(main())
