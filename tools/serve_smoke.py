"""CI smoke test for the ``repro serve`` endpoint.

Boots the real CLI (``python -m repro serve``) on a tiny generated corpus
and a free port, waits for the banner line, hits ``/healthz``, ``/search``
and ``/stats`` through :class:`repro.service.client.ServiceClient`, then
sends SIGINT and requires a clean exit with the shutdown banner — i.e. the
whole serve path a user would touch, end to end, in a few seconds.

Usage::

    PYTHONPATH=src python tools/serve_smoke.py
"""

from __future__ import annotations

import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

__all__ = ["main"]

_BANNER = re.compile(r"http://([\d.]+):(\d+)")


def _generate_corpus(path: Path) -> None:
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "generate",
            "--dataset",
            "fractal",
            "--sequences",
            "12",
            "--out",
            str(path),
        ],
        capture_output=True,
        text=True,
        timeout=120,
    )
    if completed.returncode != 0:
        raise RuntimeError(f"corpus generation failed:\n{completed.stderr}")


def main() -> int:
    """Run the smoke sequence; returns a process exit code."""
    import numpy as np

    from repro.service.client import ServiceClient

    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        corpus = Path(tmp) / "corpus.npz"
        _generate_corpus(corpus)

        server = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--corpus",
                str(corpus),
                "--port",
                "0",
                "--workers",
                "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            if server.stdout is None:
                raise RuntimeError("server stdout was not captured")
            banner = server.stdout.readline()
            match = _BANNER.search(banner)
            if match is None:
                raise RuntimeError(f"no address banner in: {banner!r}")
            host, port = match.group(1), int(match.group(2))
            client = ServiceClient(f"http://{host}:{port}", timeout=10.0)

            health = client.healthz()
            if health["status"] != "ok" or health["sequences"] != 12:
                raise RuntimeError(f"bad /healthz reply: {health}")

            dimension = int(health["dimension"])
            rng = np.random.default_rng(2000)
            query = rng.random((30, dimension))
            reply = client.search(query, 0.5, find_intervals=True)
            for field in ("answers", "candidates", "cache", "snapshot_version"):
                if field not in reply:
                    raise RuntimeError(f"/search reply missing {field!r}: {reply}")
            again = client.search(query, 0.5)
            if again["cache"] != "hit" or again["answers"] != reply["answers"]:
                raise RuntimeError(f"repeat query not served from cache: {again}")

            stats = client.stats()
            if stats["requests_total"] < 2 or stats["cache"]["hits"] < 1:
                raise RuntimeError(f"bad /stats reply: {stats}")

            server.send_signal(signal.SIGINT)
            deadline = time.monotonic() + 15
            while server.poll() is None and time.monotonic() < deadline:
                time.sleep(0.1)
            if server.poll() != 0:
                raise RuntimeError(
                    f"server did not exit cleanly (returncode={server.poll()})"
                )
            tail = server.stdout.read()
            if "shut down cleanly" not in tail:
                raise RuntimeError(f"missing shutdown banner in: {tail!r}")
        finally:
            if server.poll() is None:
                server.kill()
                server.wait(timeout=10)

    print(
        "serve smoke OK: /healthz, /search (miss then hit), /stats, "
        "clean SIGINT shutdown"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
