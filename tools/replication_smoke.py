"""CI replication smoke test: log shipping and the durable repair journal.

Two phases, both through the real CLI and real processes:

**Phase 1 — follower catch-up past a kill -9.**  Boot a durable leader
and two ``repro serve --follow`` followers.  Stream inserts through the
leader, ``SIGKILL`` one follower mid-stream, keep writing, then restart
it from the same data directory with ``REPRO_CHECK_CONTRACTS=1``.  The
restarted follower must catch up **via log shipping alone** (its durable
cursor resumes; zero snapshot resyncs) to exact corpus parity with both
the leader and the follower that never crashed, and it must keep
rejecting direct writes (``FollowerReadOnly``).

**Phase 2 — repair journal survives a coordinator restart.**  Boot three
durable backends and a ``repro cluster-serve`` coordinator with
``--journal-dir``.  Kill a backend, write through the coordinator
(quorum 1) so a repair is journaled, then ``SIGKILL`` the coordinator
itself.  Restart the backend and a *new* coordinator over the same
journal directory: the queued repair must be visible before any probe
(recovered from disk, not memory) and must drain onto the restarted
backend.

Usage::

    PYTHONPATH=src python tools/replication_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

__all__ = ["main"]

_BANNER = re.compile(r"http://([\d.]+):(\d+)")

DIMENSION = 2
STREAM_SIZE = 12
KILL_AFTER = 6  # follower B dies after this many leader inserts
POLL_INTERVAL = "0.1"
CATCHUP_DEADLINE = 30.0


def _env(**extra: str) -> dict[str, str]:
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    env.update(extra)
    return env


def _popen(argv: list[str], env: dict[str, str]) -> subprocess.Popen:
    return subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )


def _await_banner(process: subprocess.Popen, what: str) -> tuple[str, int]:
    if process.stdout is None:
        raise RuntimeError(f"{what}: stdout was not captured")
    banner = process.stdout.readline()
    match = _BANNER.search(banner)
    if match is None:
        raise RuntimeError(f"{what}: no address banner in {banner!r}")
    return match.group(1), int(match.group(2))


def _stop_cleanly(process: subprocess.Popen, what: str) -> None:
    process.send_signal(signal.SIGINT)
    deadline = time.monotonic() + 15
    while process.poll() is None and time.monotonic() < deadline:
        time.sleep(0.1)
    if process.poll() != 0:
        raise RuntimeError(f"{what} did not exit cleanly ({process.poll()})")


def _kill_hard(process: subprocess.Popen, what: str) -> None:
    process.send_signal(signal.SIGKILL)
    process.wait(timeout=10)
    if process.poll() == 0:
        raise RuntimeError(f"{what} survived SIGKILL?")


def _post(base_url: str, path: str, body: dict) -> dict:
    request = urllib.request.Request(
        base_url + path,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10.0) as reply:
        return dict(json.loads(reply.read()))


def _corpus_fingerprint(export: dict) -> list[tuple]:
    """A comparable identity for a full export: sorted (id, points)."""
    return sorted(
        (str(entry["id"]), json.dumps(entry["points"]))
        for entry in export["sequences"]
    )


def _await_caught_up(client, what: str) -> dict:
    """Poll ``/healthz`` until the follower's replication lag is zero."""
    deadline = time.monotonic() + CATCHUP_DEADLINE
    status: dict = {}
    while time.monotonic() < deadline:
        status = dict(client.healthz()["replication"])
        if status["lag"] == 0 and status["applied_seq"] > 0:
            return status
        time.sleep(0.2)
    raise RuntimeError(f"{what} never caught up: {status}")


def _phase_one(tmp: Path) -> None:
    """Leader + two followers; one follower dies and resumes by shipping."""
    import numpy as np

    from repro.core.database import SequenceDatabase
    from repro.service.client import ServiceClient
    from repro.service.errors import FollowerReadOnly

    leader_dir = tmp / "leader"
    follower_dirs = [tmp / "follower-a", tmp / "follower-b"]
    for directory in (leader_dir, *follower_dirs):
        directory.mkdir()
    # An empty snapshot lets the leader boot durable with no corpus.
    SequenceDatabase(DIMENSION).save(leader_dir / "snapshot.npz")

    def start_serve(argv: list[str], what: str, env: dict) -> tuple:
        process = _popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0", *argv],
            env,
        )
        host, port = _await_banner(process, what)
        return process, f"http://{host}:{port}"

    def start_follower(
        directory: Path, leader_url: str, what: str, env: dict
    ) -> tuple:
        return start_serve(
            [
                "--data-dir",
                str(directory),
                "--follow",
                leader_url,
                "--poll-interval",
                POLL_INTERVAL,
            ],
            what,
            env,
        )

    rng = np.random.default_rng(5000)
    stream = {
        f"ship-{n}": rng.random((16, DIMENSION)) for n in range(STREAM_SIZE)
    }
    processes: list[subprocess.Popen | None] = [None, None, None]
    try:
        leader_proc, leader_url = start_serve(
            ["--data-dir", str(leader_dir)], "leader", _env()
        )
        processes[0] = leader_proc
        fa_proc, fa_url = start_follower(
            follower_dirs[0], leader_url, "follower A", _env()
        )
        processes[1] = fa_proc
        fb_proc, fb_url = start_follower(
            follower_dirs[1], leader_url, "follower B", _env()
        )
        processes[2] = fb_proc

        leader = ServiceClient(leader_url, timeout=10.0)
        items = list(stream.items())
        for sequence_id, points in items[:KILL_AFTER]:
            leader.insert(points, sequence_id=sequence_id)

        # kill -9 follower B mid-stream: no drain, no cursor flush beyond
        # what each applied batch already persisted.
        _kill_hard(fb_proc, "follower B")
        processes[2] = None
        for sequence_id, points in items[KILL_AFTER:]:
            leader.insert(points, sequence_id=sequence_id)

        # Restart from the same data directory, contracts armed: the
        # durable cursor must resume the tail exactly where it stopped.
        fb_proc, fb_url = start_follower(
            follower_dirs[1],
            leader_url,
            "follower B (restarted)",
            _env(REPRO_CHECK_CONTRACTS="1"),
        )
        processes[2] = fb_proc

        follower_a = ServiceClient(fa_url, timeout=10.0)
        follower_b = ServiceClient(fb_url, timeout=10.0)
        status_a = _await_caught_up(follower_a, "follower A")
        status_b = _await_caught_up(follower_b, "follower B (restarted)")
        if status_b["resyncs"] != 0:
            raise RuntimeError(
                "restarted follower fell back to a snapshot resync "
                f"instead of log shipping: {status_b}"
            )
        if status_a["applied_seq"] != status_b["applied_seq"]:
            raise RuntimeError(
                f"followers disagree on applied_seq: {status_a} vs {status_b}"
            )

        # Exact parity: crashed follower == never-crashed follower == leader.
        reference = _corpus_fingerprint(leader.export_sequences())
        if len(reference) != STREAM_SIZE:
            raise RuntimeError(f"leader lost writes: {len(reference)}")
        for client, what in ((follower_a, "follower A"), (follower_b, "follower B")):
            fingerprint = _corpus_fingerprint(client.export_sequences())
            if fingerprint != reference:
                raise RuntimeError(f"{what} diverged from the leader corpus")

        # Followers stay read-only even after a restart.
        try:
            follower_b.insert(rng.random((4, DIMENSION)), sequence_id="forbidden")
        except FollowerReadOnly:
            pass
        else:
            raise RuntimeError("restarted follower accepted a direct write")

        _stop_cleanly(fb_proc, "follower B (restarted)")
        _stop_cleanly(fa_proc, "follower A")
        _stop_cleanly(leader_proc, "leader")
        processes = [None, None, None]
    finally:
        for process in processes:
            if process is not None and process.poll() is None:
                process.kill()
                process.wait(timeout=10)


def _phase_two(tmp: Path) -> None:
    """The journaled repair outlives a SIGKILL'd coordinator."""
    import numpy as np

    from repro.cluster import ShardRouter
    from repro.core.database import SequenceDatabase
    from repro.service.client import ServiceClient

    replication = 2
    journal_dir = tmp / "journal"
    data_dirs = [tmp / f"backend-{i}" for i in range(3)]
    for data_dir in data_dirs:
        data_dir.mkdir()
        SequenceDatabase(DIMENSION).save(data_dir / "snapshot.npz")

    router = ShardRouter(num_backends=3, replication=replication)
    rng = np.random.default_rng(6000)
    corpus = {f"seq-{n}": rng.random((12, DIMENSION)) for n in range(8)}
    # A write placed on backend 1 (among others): its repair is what the
    # journal must carry across the coordinator crash.
    repair_id = next(
        f"repair-{n}"
        for n in range(1000)
        if 1 in router.placement(f"repair-{n}").replicas
    )
    repair_points = rng.random((12, DIMENSION))

    def start_backend(data_dir: Path, port: int) -> tuple:
        process = _popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--data-dir",
                str(data_dir),
                "--port",
                str(port),
                "--workers",
                "2",
            ],
            _env(),
        )
        _, bound = _await_banner(process, f"backend {data_dir.name}")
        return process, bound

    def start_coordinator(ports: list[int], env: dict) -> tuple:
        process = _popen(
            [
                sys.executable,
                "-m",
                "repro",
                "cluster-serve",
                *(
                    arg
                    for port in ports
                    for arg in ("--backend", f"http://127.0.0.1:{port}")
                ),
                "--replication",
                str(replication),
                "--write-quorum",
                "1",
                "--probe-interval",
                "30",  # probes are forced via POST /probe below
                "--journal-dir",
                str(journal_dir),
                "--port",
                "0",
            ],
            env,
        )
        host, port = _await_banner(process, "coordinator")
        return process, f"http://{host}:{port}"

    backends: list[subprocess.Popen | None] = []
    ports: list[int] = []
    coordinator: subprocess.Popen | None = None
    try:
        for data_dir in data_dirs:
            process, port = start_backend(data_dir, 0)
            backends.append(process)
            ports.append(port)
        coordinator, base_url = start_coordinator(ports, _env())
        client = ServiceClient(base_url, timeout=10.0)

        for sequence_id, points in corpus.items():
            client.insert(points, sequence_id=sequence_id)

        # Backend 1 dies; the quorum-1 write queues a journaled repair.
        _kill_hard(backends[1], "backend 1")
        client.insert(repair_points, sequence_id=repair_id)
        stats = client.stats()
        if stats["repairs_queued"] < 1:
            raise RuntimeError(f"no repair queued: {stats}")
        if sum(stats["repair_pending"].values()) < 1:
            raise RuntimeError(f"no repair pending: {stats}")

        # The coordinator itself dies with the repair still queued.
        _kill_hard(coordinator, "coordinator")
        coordinator = None

        # Restart the backend (WAL recovery on its old port), then a NEW
        # coordinator over the same journal directory.
        process, _ = start_backend(data_dirs[1], ports[1])
        backends[1] = process
        coordinator, base_url = start_coordinator(
            ports, _env(REPRO_CHECK_CONTRACTS="1")
        )
        client = ServiceClient(base_url, timeout=10.0)

        # Before any probe: the pending repair came back from disk.
        stats = client.stats()
        if sum(stats["repair_pending"].values()) < 1:
            raise RuntimeError(
                f"journaled repair lost across coordinator restart: {stats}"
            )

        _post(base_url, "/probe", {})
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            if sum(client.stats()["repair_pending"].values()) == 0:
                break
            time.sleep(0.2)
            _post(base_url, "/probe", {})
        else:
            raise RuntimeError("recovered repair never drained")

        restarted = ServiceClient(
            f"http://127.0.0.1:{ports[1]}", timeout=10.0
        )
        repaired = restarted.search(repair_points, 0.05)
        if repair_id not in repaired["answers"]:
            raise RuntimeError(
                f"repaired write missing on restarted backend: {repaired}"
            )

        _stop_cleanly(coordinator, "coordinator (restarted)")
        coordinator = None
        for index in (0, 1, 2):
            _stop_cleanly(backends[index], f"backend {index}")
            backends[index] = None
    finally:
        for process in [coordinator, *[b for b in backends if b]]:
            if process is not None and process.poll() is None:
                process.kill()
                process.wait(timeout=10)


def main() -> int:
    """Run both replication phases; returns a process exit code."""
    with tempfile.TemporaryDirectory(prefix="repro-replication-") as tmp:
        root = Path(tmp)
        phase_one = root / "shipping"
        phase_two = root / "journal"
        phase_one.mkdir()
        phase_two.mkdir()
        _phase_one(phase_one)
        print(
            "phase 1 OK: kill -9'd follower resumed its durable cursor and "
            "reached leader parity by log shipping alone (0 resyncs)"
        )
        _phase_two(phase_two)
        print(
            "phase 2 OK: journaled repair survived a coordinator SIGKILL "
            "and drained onto the restarted backend"
        )
    print(
        "replication smoke OK: follower catch-up past kill -9, durable "
        "repair journal across coordinator restart"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
