"""Developer tooling for the repro repository (not shipped with the package)."""
