"""CI crash-recovery smoke test: kill -9 loses no acknowledged write.

The full durability loop, through the real CLI and real processes:

1. generate a tiny corpus and boot ``python -m repro serve --data-dir``
   (WAL enabled) on a free port;
2. insert sequences and remove one through :class:`ServiceClient` — each
   acknowledgement means the record is fsynced in the WAL;
3. ``SIGKILL`` the server (no drain, no checkpoint, no atexit);
4. restart from the same data directory **without** ``--corpus`` and with
   ``REPRO_CHECK_CONTRACTS=1``, and require every acknowledged mutation
   to be visible;
5. tier-1 parity: a range search against the recovered server must return
   exactly what a never-crashed in-process engine returns on the same
   logical state.

Usage::

    PYTHONPATH=src python tools/crash_smoke.py
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

__all__ = ["main"]

_BANNER = re.compile(r"http://([\d.]+):(\d+)")


def _generate_corpus(path: Path) -> None:
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "generate",
            "--dataset",
            "fractal",
            "--sequences",
            "10",
            "--out",
            str(path),
        ],
        capture_output=True,
        text=True,
        timeout=120,
    )
    if completed.returncode != 0:
        raise RuntimeError(f"corpus generation failed:\n{completed.stderr}")


def _boot(arguments: list[str], env: dict[str, str]) -> tuple:
    """Start ``repro serve``; returns (process, base_url)."""
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *arguments],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    if server.stdout is None:
        server.kill()
        raise RuntimeError("server stdout was not captured")
    banner = server.stdout.readline()
    match = _BANNER.search(banner)
    if match is None:
        server.kill()
        raise RuntimeError(f"no address banner in: {banner!r}")
    return server, f"http://{match.group(1)}:{match.group(2)}"


def main() -> int:
    """Run the crash-recovery sequence; returns a process exit code."""
    import numpy as np

    from repro.core.database import SequenceDatabase
    from repro.core.search import SimilaritySearch
    from repro.service.client import RetryPolicy, ServiceClient

    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")

    with tempfile.TemporaryDirectory(prefix="repro-crash-") as tmp:
        corpus = Path(tmp) / "corpus.npz"
        data_dir = Path(tmp) / "data"
        _generate_corpus(corpus)

        server, base_url = _boot(
            ["--corpus", str(corpus), "--data-dir", str(data_dir)], env
        )
        rng = np.random.default_rng(2000)
        inserted: dict[str, list] = {}
        try:
            client = ServiceClient(base_url, timeout=10.0)
            health = client.healthz()
            if not health["durable"]:
                raise RuntimeError(f"server is not durable: {health}")
            dimension = int(health["dimension"])
            for ordinal in range(3):
                points = rng.random((20, dimension))
                sequence_id = f"crash-{ordinal}"
                client.insert(points, sequence_id=sequence_id)
                inserted[sequence_id] = points.tolist()
            client.remove("crash-1")
            del inserted["crash-1"]
            # Every call above returned 200: all three inserts and the
            # remove are acknowledged, hence fsynced in the WAL.
        finally:
            server.send_signal(signal.SIGKILL)
            server.wait(timeout=15)
        if server.poll() == 0:
            raise RuntimeError("server survived SIGKILL?")

        # Restart purely from the data directory, contracts armed.
        env_checked = dict(env)
        env_checked["REPRO_CHECK_CONTRACTS"] = "1"
        server, base_url = _boot(["--data-dir", str(data_dir)], env_checked)
        try:
            client = ServiceClient(
                base_url,
                timeout=10.0,
                retry=RetryPolicy(max_attempts=3, seed=0),
            )
            health = client.healthz()
            expected_count = 10 + len(inserted)
            if health["sequences"] != expected_count:
                raise RuntimeError(
                    f"recovered {health['sequences']} sequences, expected "
                    f"{expected_count}: an acknowledged write was lost"
                )

            # Acknowledged inserts are findable; the removed one is not.
            for sequence_id, points in inserted.items():
                reply = client.search(points, 0.05)
                if sequence_id not in reply["answers"]:
                    raise RuntimeError(
                        f"recovered server cannot find {sequence_id!r}"
                    )
            probe = client.search(np.asarray(inserted["crash-0"]), 0.05)
            if "crash-1" in probe["answers"]:
                raise RuntimeError("removed sequence came back after recovery")

            # Tier-1 parity: recovered HTTP answers == never-crashed engine.
            reference = SequenceDatabase.load(corpus)
            for sequence_id, points in inserted.items():
                reference.add(points, sequence_id=sequence_id)
            search = SimilaritySearch(reference)
            query = rng.random((25, dimension))
            for epsilon in (0.5, 0.25):
                served = client.search(query, epsilon)
                expected = search.search(query, epsilon)
                if served["answers"] != list(expected.answers):
                    raise RuntimeError(
                        f"parity failure at epsilon={epsilon}: served "
                        f"{served['answers']}, expected {expected.answers}"
                    )

            server.send_signal(signal.SIGINT)
            deadline = time.monotonic() + 15
            while server.poll() is None and time.monotonic() < deadline:
                time.sleep(0.1)
            if server.poll() != 0:
                raise RuntimeError(
                    f"recovered server did not exit cleanly "
                    f"(returncode={server.poll()})"
                )
        finally:
            if server.poll() is None:
                server.kill()
                server.wait(timeout=10)

    print(
        "crash smoke OK: kill -9 mid-serve, restart from WAL, all "
        "acknowledged writes present, search parity with a never-crashed "
        "engine (contracts on)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
