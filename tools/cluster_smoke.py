"""CI smoke test for the cluster serving layer — with real failures.

Boots three durable ``repro serve`` backends (empty, data-dir recovery)
and a ``repro cluster-serve`` coordinator attached to them, then walks
the failure ladder end to end:

1. insert a corpus through the coordinator and verify a complete search;
2. ``kill -9`` one backend and require *failover* — same answers,
   still ``complete=true`` (every shard keeps a live replica);
3. write while that backend is down (quorum 1) so a repair is queued;
4. kill a second backend and require *typed degradation* — search
   returns ``complete=false`` naming exactly the shard whose replicas
   are both dead, and kNN raises ``ShardUnavailable`` (fail closed);
5. restart the first backend on its old port (WAL recovery), force a
   probe, and require *read-repair* — the missed write shows up on the
   restarted backend and the cluster serves complete results again;
6. SIGINT everything and require clean shutdown banners.

Usage::

    PYTHONPATH=src python tools/cluster_smoke.py
"""

from __future__ import annotations

import json
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

__all__ = ["main"]

_BANNER = re.compile(r"http://([\d.]+):(\d+)")

DIMENSION = 2
CORPUS_SIZE = 10
REPLICATION = 2


def _popen(argv: list[str]) -> subprocess.Popen:
    return subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True
    )


def _await_banner(process: subprocess.Popen, what: str) -> tuple[str, int]:
    if process.stdout is None:
        raise RuntimeError(f"{what}: stdout was not captured")
    banner = process.stdout.readline()
    match = _BANNER.search(banner)
    if match is None:
        raise RuntimeError(f"{what}: no address banner in {banner!r}")
    return match.group(1), int(match.group(2))


def _start_backend(data_dir: Path, port: int) -> tuple[subprocess.Popen, int]:
    process = _popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--data-dir",
            str(data_dir),
            "--port",
            str(port),
            "--workers",
            "2",
        ]
    )
    _, bound = _await_banner(process, f"backend {data_dir.name}")
    return process, bound


def _stop_cleanly(process: subprocess.Popen, what: str) -> None:
    process.send_signal(signal.SIGINT)
    deadline = time.monotonic() + 15
    while process.poll() is None and time.monotonic() < deadline:
        time.sleep(0.1)
    if process.poll() != 0:
        raise RuntimeError(f"{what} did not exit cleanly ({process.poll()})")
    tail = process.stdout.read() if process.stdout else ""
    if "shut down cleanly" not in tail:
        raise RuntimeError(f"{what}: missing shutdown banner in {tail!r}")


def _post(base_url: str, path: str, body: dict) -> dict:
    request = urllib.request.Request(
        base_url + path,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10.0) as reply:
        return dict(json.loads(reply.read()))


def main() -> int:
    """Run the smoke sequence; returns a process exit code."""
    import numpy as np

    from repro.cluster import ShardRouter
    from repro.core.database import SequenceDatabase
    from repro.service.client import ServiceClient
    from repro.service.errors import ShardUnavailable

    router = ShardRouter(num_backends=3, replication=REPLICATION)
    rng = np.random.default_rng(4000)
    corpus = {
        f"seq-{i}": rng.random((20, DIMENSION)) for i in range(CORPUS_SIZE)
    }
    # A write id whose replicas include backend 1 but not backend 2: it
    # must survive backend 1's death (step 3) and must not land on the
    # backend that stays dead (step 4), so read-repair alone (step 5)
    # makes it fully replicated.
    repair_id = next(
        f"repair-{n}"
        for n in range(1000)
        if 1 in router.placement(f"repair-{n}").replicas
        and 2 not in router.placement(f"repair-{n}").replicas
    )
    # The only shard both backend 1 and backend 2 replicate: the one
    # search must name as missing once both are dead.
    dead_shard = [
        shard
        for shard in range(router.num_shards)
        if set(router.replicas_of(shard)) <= {1, 2}
    ]

    with tempfile.TemporaryDirectory(prefix="repro-cluster-smoke-") as tmp:
        data_dirs = [Path(tmp) / f"backend-{i}" for i in range(3)]
        for data_dir in data_dirs:
            data_dir.mkdir()
            # An empty snapshot lets `repro serve --data-dir` boot with
            # no corpus; all data then arrives through the coordinator.
            SequenceDatabase(DIMENSION).save(data_dir / "snapshot.npz")

        backends: list[subprocess.Popen | None] = []
        ports: list[int] = []
        coordinator: subprocess.Popen | None = None
        try:
            for data_dir in data_dirs:
                process, port = _start_backend(data_dir, 0)
                backends.append(process)
                ports.append(port)

            coordinator = _popen(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "cluster-serve",
                    *(
                        arg
                        for port in ports
                        for arg in ("--backend", f"http://127.0.0.1:{port}")
                    ),
                    "--replication",
                    str(REPLICATION),
                    "--write-quorum",
                    "1",
                    "--probe-interval",
                    "30",  # probes are forced via POST /probe below
                    "--port",
                    "0",
                ]
            )
            host, port = _await_banner(coordinator, "coordinator")
            base_url = f"http://{host}:{port}"
            client = ServiceClient(base_url, timeout=10.0)

            # 1. Populate through the coordinator; a wide search sees all.
            for sequence_id, points in corpus.items():
                client.insert(points, sequence_id)
            query = rng.random((8, DIMENSION))
            reply = client.search(query, 2.5)
            if not reply["complete"] or reply["missing_shards"]:
                raise RuntimeError(f"baseline search degraded: {reply}")
            baseline = sorted(reply["answers"])
            if baseline != sorted(corpus):
                raise RuntimeError(f"baseline answers wrong: {baseline}")

            # 2. kill -9 backend 1: every shard keeps a replica, so the
            # coordinator must fail over and stay complete.
            backends[1].kill()
            backends[1].wait(timeout=10)
            reply = client.search(query, 2.5)
            if not reply["complete"] or sorted(reply["answers"]) != baseline:
                raise RuntimeError(f"failover search degraded: {reply}")

            # 3. Write while backend 1 is down (quorum 1 admits it); the
            # coordinator must queue a repair for the dead replica.
            client.insert(corpus["seq-0"] * 0.5, repair_id)
            stats = client.stats()
            if stats["repairs_queued"] < 1:
                raise RuntimeError(f"no repair queued: {stats}")

            # 4. Kill backend 2 as well: the shard replicated only on
            # backends 1 and 2 is now gone — degradation must be typed.
            backends[2].kill()
            backends[2].wait(timeout=10)
            reply = client.search(query, 2.5)
            if reply["complete"] or reply["missing_shards"] != dead_shard:
                raise RuntimeError(
                    f"expected partial result missing {dead_shard}: {reply}"
                )
            try:
                client.knn(query, 3)
            except ShardUnavailable as error:
                if list(error.missing_shards) != dead_shard:
                    raise RuntimeError(
                        f"knn named wrong shards: {error.missing_shards}"
                    ) from error
            else:
                raise RuntimeError("knn over a dead shard did not fail closed")

            # 5. Restart backend 1 on its old port: WAL recovery restores
            # its acknowledged writes, and a forced probe must replay the
            # queued repair onto it.
            process, _ = _start_backend(data_dirs[1], ports[1])
            backends[1] = process
            _post(base_url, "/probe", {})
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if sum(client.stats()["repair_pending"].values()) == 0:
                    break
                time.sleep(0.2)
                _post(base_url, "/probe", {})
            else:
                raise RuntimeError("read-repair never drained")
            restarted = ServiceClient(
                f"http://127.0.0.1:{ports[1]}", timeout=10.0
            )
            repaired = restarted.search(corpus["seq-0"] * 0.5, 0.05)
            if repair_id not in repaired["answers"]:
                raise RuntimeError(
                    f"repaired write missing on restarted backend: {repaired}"
                )

            reply = client.search(query, 2.5)
            if not reply["complete"] or sorted(reply["answers"]) != sorted(
                baseline + [repair_id]
            ):
                raise RuntimeError(f"post-repair search degraded: {reply}")
            health = client.healthz()
            if health["unavailable_shards"]:
                raise RuntimeError(f"shards still unavailable: {health}")

            # 6. Everything still alive shuts down cleanly.
            _stop_cleanly(coordinator, "coordinator")
            coordinator = None
            _stop_cleanly(backends[0], "backend 0")
            _stop_cleanly(backends[1], "backend 1 (restarted)")
            backends[0] = backends[1] = None
        finally:
            for process in [coordinator, *[b for b in backends if b]]:
                if process is not None and process.poll() is None:
                    process.kill()
                    process.wait(timeout=10)

    print(
        "cluster smoke OK: scatter-gather parity, failover past a kill -9, "
        "typed partial results, write-quorum + read-repair, clean shutdown"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
