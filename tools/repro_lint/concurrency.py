"""Concurrency-discipline rules (REP200–REP206).

The serving (``repro.service``) and cluster (``repro.cluster``) layers are
the multithreaded half of the codebase, so they carry extra obligations
that the rest of the library does not:

* shared attributes are mutated only under the class's own lock (REP200),
* lexically nested lock acquisitions follow the declared per-module order
  table (REP201) — the runtime sanitizer in :mod:`repro.util.sync` checks
  the *dynamic* cross-module order, this rule checks what is visible in
  the source,
* no blocking I/O or sleeping while a lock is held (REP202),
* locks are constructed through :mod:`repro.util.sync` so they are
  traceable (REP203),
* condition variables are signalled/awaited only under their own lock
  (REP204),
* no self-deadlocks (REP205) and no ``acquire()`` without a
  ``finally``-path ``release()`` (REP206).

A mutation that is safe *without* the lock for a documented reason is
waived with a ``# thread-safe: <reason>`` comment on the offending line;
the reason is mandatory.  Classes that declare no lock attributes are
treated as externally synchronised (their callers hold a lock) and are
exempt from REP200.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from dataclasses import dataclass

from tools.repro_lint.model import Checker, ModuleContext, Rule, Violation

__all__ = [
    "BLOCKING_CALLS",
    "CONCURRENCY_RULE_SPECS",
    "MODULE_LOCK_ORDER",
    "THREAD_SAFE_WAIVER",
]

# Layers whose library modules carry the concurrency obligations.  The
# bench layer qualifies because its load generator runs worker threads
# against shared cursors.
_CONCURRENT_LAYERS = frozenset({"service", "cluster", "bench"})

# The declared intra-module lock acquisition order: while holding a lock,
# a thread may only take locks that appear *later* in its module's tuple.
# Cross-module order (engine.write -> cache.entries, drain -> health) is
# the runtime sanitizer's job; see docs/concurrency.md for the full
# global table.
MODULE_LOCK_ORDER: dict[str, tuple[str, ...]] = {
    "repro.service.engine": (
        "_write_lock",
        "_trace_lock",
        "_health_lock",
    ),
    "repro.cluster.coordinator": (
        "_order_lock",
        "_latency_lock",
        "_rng_lock",
        "_lag_lock",
        "_counters_lock",
    ),
}

# Dotted callables that block (I/O, sleeping, subprocesses): calling any
# of these while a lock is held turns every peer of that lock into a
# convoy behind the slow operation.
BLOCKING_CALLS: frozenset[str] = frozenset(
    {
        "os.fsync",
        "os.fdatasync",
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.create_connection",
        "urllib.request.urlopen",
    }
)

# ``# thread-safe: <reason>`` — the REP200 waiver; a reason is required.
THREAD_SAFE_WAIVER = re.compile(r"#\s*thread-safe:\s*\S")

# Constructors that produce a lock-like guard when assigned to ``self``.
_LOCK_FACTORIES = frozenset(
    {"Lock", "RLock", "TracedLock", "TracedRLock"}
)
_CONDITION_FACTORIES = frozenset({"Condition", "TracedCondition"})
_RAW_FACTORIES = frozenset({"Lock", "RLock", "Condition"})
_CONDITION_METHODS = frozenset({"wait", "wait_for", "notify", "notify_all"})


def _in_scope(context: ModuleContext) -> bool:
    return context.is_library and context.layer in _CONCURRENT_LAYERS


def _call_factory_name(node: ast.expr) -> str | None:
    """``Lock`` for ``threading.Lock()`` / ``TracedLock("x")`` / ``Lock()``."""
    if not isinstance(node, ast.Call):
        return None
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _contains_lock_factory(node: ast.expr, factories: frozenset[str]) -> bool:
    """Whether ``node`` is (or builds a container of) a lock-ish call."""
    for child in ast.walk(node):
        if isinstance(child, ast.expr):
            name = _call_factory_name(child)
            if name in factories:
                return True
    return False


def _self_attr(node: ast.expr) -> str | None:
    """``"_lock"`` for the expression ``self._lock``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _guard_attr(node: ast.expr) -> str | None:
    """The ``self`` attribute a with-item guards: ``self._lock`` or
    ``self._drain_locks[i]`` both guard via their attribute name."""
    direct = _self_attr(node)
    if direct is not None:
        return direct
    if isinstance(node, ast.Subscript):
        return _self_attr(node.value)
    return None


def _identifier(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _looks_lockish(node: ast.expr, lock_attrs: frozenset[str]) -> bool:
    """Heuristic: the expression denotes a lock (for REP202/205/206)."""
    attr = _guard_attr(node)
    if attr is not None and attr in lock_attrs:
        return True
    name = _identifier(node)
    if name is None and isinstance(node, ast.Subscript):
        name = _identifier(node.value)
    return name is not None and "lock" in name.lower()


@dataclass
class _ClassInfo:
    """Lock topology of one class, read off its ``__init__``."""

    node: ast.ClassDef
    lock_attrs: frozenset[str] = frozenset()
    condition_attrs: frozenset[str] = frozenset()


def _classify(node: ast.ClassDef) -> _ClassInfo:
    locks: set[str] = set()
    conditions: set[str] = set()
    for method in node.body:
        if not isinstance(method, ast.FunctionDef):
            continue
        if method.name != "__init__":
            continue
        for statement in ast.walk(method):
            if not isinstance(statement, ast.Assign):
                continue
            for target in statement.targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                if _contains_lock_factory(statement.value, _LOCK_FACTORIES):
                    locks.add(attr)
                elif _contains_lock_factory(
                    statement.value, _CONDITION_FACTORIES
                ):
                    conditions.add(attr)
    return _ClassInfo(
        node=node,
        lock_attrs=frozenset(locks | conditions),
        condition_attrs=frozenset(conditions),
    )


def _module_classes(context: ModuleContext) -> list[_ClassInfo]:
    return [
        _classify(node)
        for node in ast.walk(context.tree)
        if isinstance(node, ast.ClassDef)
    ]


@dataclass
class _WithFrame:
    """One entered with-item: the guarded attr (if a self lock) and the
    raw expression dump (for same-expression REP205 detection)."""

    attr: str | None
    dump: str
    node: ast.With
    lockish: bool


def _methods_of(info: _ClassInfo) -> Iterator[ast.FunctionDef]:
    for statement in info.node.body:
        if isinstance(statement, ast.FunctionDef):
            yield statement


def _walk_withs(
    body: list[ast.stmt],
    lock_attrs: frozenset[str],
    stack: list[_WithFrame],
) -> Iterator[tuple[ast.stmt, tuple[_WithFrame, ...]]]:
    """Yield every statement with the with-frames lexically above it.

    Nested function definitions get a *fresh* stack: their bodies run
    later, on whichever thread calls them, not under the locks held at
    definition time.
    """
    for statement in body:
        yield statement, tuple(stack)
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from _walk_withs(statement.body, lock_attrs, [])
            continue
        if isinstance(statement, ast.With):
            frames = [
                _WithFrame(
                    attr=_guard_attr(item.context_expr),
                    dump=ast.dump(item.context_expr),
                    node=statement,
                    lockish=_looks_lockish(item.context_expr, lock_attrs),
                )
                for item in statement.items
            ]
            stack.extend(frames)
            yield from _walk_withs(statement.body, lock_attrs, stack)
            del stack[len(stack) - len(frames) :]
            continue
        for child_body in _child_bodies(statement):
            yield from _walk_withs(child_body, lock_attrs, stack)


def _child_bodies(statement: ast.stmt) -> Iterator[list[ast.stmt]]:
    for field_name in ("body", "orelse", "finalbody"):
        value = getattr(statement, field_name, None)
        if isinstance(value, list) and value and isinstance(
            value[0], ast.stmt
        ):
            yield value
    handlers = getattr(statement, "handlers", None)
    if handlers:
        for handler in handlers:
            yield handler.body


def _own_calls(statement: ast.stmt) -> Iterator[ast.Call]:
    """Call nodes belonging to this statement itself.

    Nested statements (with/if/try bodies, inner defs) are yielded
    separately by :func:`_walk_withs` with their own frame stacks, so
    descending into them here would double-count their calls under the
    wrong frames.
    """
    pending: list[ast.AST] = [statement]
    while pending:
        node = pending.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                continue
            pending.append(child)
        if isinstance(node, ast.Call):
            yield node


def _waived(context: ModuleContext, node: ast.AST) -> bool:
    line = getattr(node, "lineno", 0)
    if not 1 <= line <= len(context.source_lines):
        return False
    return THREAD_SAFE_WAIVER.search(context.source_lines[line - 1]) is not None


def _check_guarded_mutation(
    rule: "Rule", context: ModuleContext
) -> Iterator[Violation]:
    """REP200: shared attributes are written under the class's own lock.

    Applies to classes that declare lock attributes (classes without any
    are externally synchronised by convention).  Exempt: ``__init__``
    (no concurrent access before construction completes), methods whose
    name ends in ``_locked`` (the caller holds the lock — that is the
    naming contract), and lines carrying a ``# thread-safe: <reason>``
    waiver.
    """
    if not _in_scope(context):
        return
    for info in _module_classes(context):
        if not info.lock_attrs:
            continue
        for method in _methods_of(info):
            if method.name == "__init__" or method.name.endswith("_locked"):
                continue
            for statement, frames in _walk_withs(
                method.body, info.lock_attrs, []
            ):
                targets: list[ast.expr]
                if isinstance(statement, ast.Assign):
                    targets = statement.targets
                elif isinstance(statement, (ast.AugAssign, ast.AnnAssign)):
                    targets = [statement.target]
                else:
                    continue
                mutated = [
                    attr
                    for attr in (_self_attr(target) for target in targets)
                    if attr is not None and attr not in info.lock_attrs
                ]
                if not mutated:
                    continue
                guarded = any(
                    frame.attr in info.lock_attrs
                    for frame in frames
                    if frame.attr is not None
                )
                if guarded or _waived(context, statement):
                    continue
                yield rule.violation(
                    context,
                    statement,
                    f"{info.node.name}.{method.name}() writes "
                    f"self.{mutated[0]} without holding one of the "
                    f"class's locks "
                    f"({', '.join(sorted(info.lock_attrs))}); guard it, "
                    "rename the method *_locked, or waive with "
                    "'# thread-safe: <reason>'",
                )


def _check_lock_order(
    rule: "Rule", context: ModuleContext
) -> Iterator[Violation]:
    """REP201: nested acquisitions follow the module's declared order.

    Any pair of the class's own locks that nests lexically must be
    declared in :data:`MODULE_LOCK_ORDER` and nest in declaration order.
    The runtime sanitizer covers orders this rule cannot see (locks
    reached through method calls or other objects).
    """
    if not _in_scope(context):
        return
    order = MODULE_LOCK_ORDER.get(context.module_name or "", ())
    rank = {name: index for index, name in enumerate(order)}
    for info in _module_classes(context):
        if not info.lock_attrs:
            continue
        for method in _methods_of(info):
            for statement, frames in _walk_withs(
                method.body, info.lock_attrs, []
            ):
                if not isinstance(statement, ast.With):
                    continue
                inner = [
                    _guard_attr(item.context_expr)
                    for item in statement.items
                ]
                held = [
                    frame.attr
                    for frame in frames
                    if frame.attr is not None
                    and frame.attr in info.lock_attrs
                    and frame.node is not statement
                ]
                for attr in inner:
                    if attr is None or attr not in info.lock_attrs:
                        continue
                    for held_attr in held:
                        if attr not in rank or held_attr not in rank:
                            yield rule.violation(
                                context,
                                statement,
                                f"nested acquisition self.{held_attr} -> "
                                f"self.{attr} is not declared in "
                                "MODULE_LOCK_ORDER (tools/repro_lint/"
                                "concurrency.py); declare the order so "
                                "inversions are detectable",
                            )
                        elif rank[attr] <= rank[held_attr]:
                            yield rule.violation(
                                context,
                                statement,
                                f"lock-order violation: self.{attr} "
                                f"acquired while holding "
                                f"self.{held_attr}, but the declared "
                                f"order for {context.module_name} is "
                                f"{' -> '.join(order)}",
                            )


def _dotted_name(node: ast.expr) -> str | None:
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def _check_blocking_under_lock(
    rule: "Rule", context: ModuleContext
) -> Iterator[Violation]:
    """REP202: no blocking call (fsync, sleep, sockets, subprocess) while
    a lock is lexically held."""
    if not _in_scope(context):
        return
    for info in _module_classes(context):
        for method in _methods_of(info):
            for statement, frames in _walk_withs(
                method.body, info.lock_attrs, []
            ):
                if not any(frame.lockish for frame in frames):
                    continue
                for node in _own_calls(statement):
                    name = _dotted_name(node.func)
                    if name in BLOCKING_CALLS and not _waived(context, node):
                        holder = next(
                            frame for frame in frames if frame.lockish
                        )
                        yield rule.violation(
                            context,
                            node,
                            f"blocking call {name}() while holding a "
                            f"lock (with at line "
                            f"{holder.node.lineno}); move the slow "
                            "operation outside the critical section",
                        )


def _check_raw_primitives(
    rule: "Rule", context: ModuleContext
) -> Iterator[Violation]:
    """REP203: service/cluster construct locks via ``repro.util.sync``.

    Raw ``threading.Lock``/``RLock``/``Condition`` are invisible to the
    runtime lock-order sanitizer; ``Semaphore`` and ``Event`` have no
    traced wrapper (they are not order-relevant) and stay raw.
    """
    if not _in_scope(context):
        return
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        name: str | None = None
        if isinstance(node.func, ast.Attribute):
            if _dotted_name(node.func.value) == "threading":
                name = node.func.attr
        elif isinstance(node.func, ast.Name) and node.func.id in _RAW_FACTORIES:
            # Bare names count only when imported from threading.
            if _imports_from_threading(context, node.func.id):
                name = node.func.id
        if name in _RAW_FACTORIES and not _waived(context, node):
            traced = {
                "Lock": "TracedLock",
                "RLock": "TracedRLock",
                "Condition": "TracedCondition",
            }[name]
            yield rule.violation(
                context,
                node,
                f"raw threading.{name}() in the {context.layer} layer; "
                f"use repro.util.sync.{traced}(name) so the runtime "
                "sanitizer can see it",
            )


def _imports_from_threading(context: ModuleContext, symbol: str) -> bool:
    for node in ast.walk(context.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "threading":
            if any(alias.name == symbol for alias in node.names):
                return True
    return False


def _check_condition_discipline(
    rule: "Rule", context: ModuleContext
) -> Iterator[Violation]:
    """REP204: ``wait``/``notify`` on a condition only under its lock."""
    if not _in_scope(context):
        return
    for info in _module_classes(context):
        if not info.condition_attrs:
            continue
        for method in _methods_of(info):
            for statement, frames in _walk_withs(
                method.body, info.lock_attrs, []
            ):
                for node in _own_calls(statement):
                    func = node.func
                    if not (
                        isinstance(func, ast.Attribute)
                        and func.attr in _CONDITION_METHODS
                    ):
                        continue
                    cond_attr = _self_attr(func.value)
                    if (
                        cond_attr is None
                        or cond_attr not in info.condition_attrs
                    ):
                        continue
                    held = any(
                        frame.attr == cond_attr for frame in frames
                    )
                    if not held:
                        yield rule.violation(
                            context,
                            node,
                            f"self.{cond_attr}.{func.attr}() outside "
                            f"'with self.{cond_attr}:'; waking or "
                            "waiting without the condition's lock "
                            "races the predicate",
                        )


def _check_self_deadlock(
    rule: "Rule", context: ModuleContext
) -> Iterator[Violation]:
    """REP205: the same lock expression entered twice on one thread."""
    if not _in_scope(context):
        return
    for info in _module_classes(context):
        for method in _methods_of(info):
            for statement, frames in _walk_withs(
                method.body, info.lock_attrs, []
            ):
                if not isinstance(statement, ast.With):
                    continue
                for item in statement.items:
                    if not _looks_lockish(
                        item.context_expr, info.lock_attrs
                    ):
                        continue
                    dump = ast.dump(item.context_expr)
                    for frame in frames:
                        if frame.node is statement:
                            continue
                        if frame.lockish and frame.dump == dump:
                            yield rule.violation(
                                context,
                                statement,
                                "re-entering a lock already held by "
                                "this thread (outer with at line "
                                f"{frame.node.lineno}): guaranteed "
                                "self-deadlock on a non-reentrant "
                                "lock",
                            )


def _check_manual_acquire(
    rule: "Rule", context: ModuleContext
) -> Iterator[Violation]:
    """REP206: a manual ``acquire()`` pairs with ``release()`` in a
    ``finally`` in the same function (else an exception leaks the lock).
    """
    if not _in_scope(context):
        return
    for info in _module_classes(context):
        for method in _methods_of(info):
            acquires: list[ast.Call] = []
            has_finally_release = False
            for node in ast.walk(method):
                if isinstance(node, ast.Try):
                    for final_statement in node.finalbody:
                        for child in ast.walk(final_statement):
                            if (
                                isinstance(child, ast.Call)
                                and isinstance(child.func, ast.Attribute)
                                and child.func.attr == "release"
                            ):
                                has_finally_release = True
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "acquire"
                    and _looks_lockish(node.func.value, info.lock_attrs)
                ):
                    acquires.append(node)
            for node in acquires:
                if not has_finally_release and not _waived(context, node):
                    yield rule.violation(
                        context,
                        node,
                        "manual lock acquire() without a release() in a "
                        "finally block in the same function; prefer "
                        "'with', or guarantee the release",
                    )


# (code, summary, checker) triples; tools.repro_lint.rules wraps these
# into Rule objects so this module never imports Rule at runtime.
CONCURRENCY_RULE_SPECS: tuple[tuple[str, str, Checker], ...] = (
    (
        "REP200",
        "shared attributes are mutated under the owning class's lock",
        _check_guarded_mutation,
    ),
    (
        "REP201",
        "nested lock acquisitions follow the declared module lock order",
        _check_lock_order,
    ),
    (
        "REP202",
        "no blocking calls (fsync/sleep/socket/subprocess) under a lock",
        _check_blocking_under_lock,
    ),
    (
        "REP203",
        "service/cluster locks are built via repro.util.sync, not threading",
        _check_raw_primitives,
    ),
    (
        "REP204",
        "condition wait/notify only while holding the condition's lock",
        _check_condition_discipline,
    ),
    (
        "REP205",
        "no re-entry of a lock already held (lexical self-deadlock)",
        _check_self_deadlock,
    ),
    (
        "REP206",
        "manual acquire() pairs with release() in a finally",
        _check_manual_acquire,
    ),
)
