"""Shared data model for the linter: rules, violations, module context.

Everything the rule families (``rules.py`` REP1xx, ``concurrency.py``
REP2xx, ``aliasing.py`` REP3xx) share lives here so none of them has to
import another family: :class:`Rule` (code, summary, checker, waiver
syntax), :class:`Violation`, :class:`ModuleContext`, and the
distance-name lexicon several rules key on.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Callable, Iterator
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "Checker",
    "DISTANCE_LEXICON",
    "ModuleContext",
    "Rule",
    "Violation",
]

_DISABLE_PATTERN = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9,\s]+)")

# Identifier tokens that mark a value as a distance in the paper's
# Dmbr/Dnorm/D hierarchy; REP104 (float equality) and REP305 (dtype
# narrowing) both key on these.
DISTANCE_LEXICON: frozenset[str] = frozenset(
    {"dist", "distance", "distances", "dmbr", "dnorm", "dmean", "epsilon"}
)


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    rule: str
    message: str
    path: Path
    line: int
    col: int

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


@dataclass(frozen=True)
class ModuleContext:
    """Everything a rule needs to know about one parsed module."""

    path: Path
    tree: ast.Module
    source_lines: tuple[str, ...]
    module_name: str | None  # dotted name when resolvable (e.g. repro.core.mbr)
    is_library: bool  # lives under a src/ tree (shipped library code)

    @property
    def layer(self) -> str | None:
        """The architectural layer of a ``repro`` module, if any.

        ``repro.core.mbr`` -> ``core``; top-level modules such as
        ``repro.cli`` or ``repro.__init__`` map to ``top``.
        """
        if self.module_name is None:
            return None
        parts = self.module_name.split(".")
        if parts[0] != "repro":
            return None
        if len(parts) <= 2:
            return "top"
        return parts[1]

    def disabled_rules(self, line: int) -> frozenset[str]:
        """Rule codes suppressed by a ``repro-lint: disable=`` comment."""
        if not 1 <= line <= len(self.source_lines):
            return frozenset()
        match = _DISABLE_PATTERN.search(self.source_lines[line - 1])
        if match is None:
            return frozenset()
        return frozenset(
            token.strip().upper()
            for token in match.group(1).split(",")
            if token.strip()
        )


Checker = Callable[["Rule", "ModuleContext"], Iterator[Violation]]


@dataclass(frozen=True)
class Rule:
    """One lint rule: a code, a summary, a checker, and its waiver syntax.

    ``waiver`` is the inline comment that suppresses the rule with a
    mandatory reason (e.g. ``# thread-safe: <reason>`` for REP2xx,
    ``# alias-ok: <reason>`` for REP3xx); rules without a dedicated
    waiver fall back to the generic per-line disable comment.
    """

    code: str
    summary: str
    checker: Checker
    waiver: str = ""

    @property
    def waiver_syntax(self) -> str:
        """The inline comment that suppresses this rule on one line."""
        return self.waiver or f"# repro-lint: disable={self.code}"

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        return self.checker(self, context)

    def violation(
        self, context: ModuleContext, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            rule=self.code,
            message=message,
            path=context.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )
