"""Shared data model for the linter: violations and module context."""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

__all__ = ["ModuleContext", "Violation"]

_DISABLE_PATTERN = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9,\s]+)")


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    rule: str
    message: str
    path: Path
    line: int
    col: int

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


@dataclass(frozen=True)
class ModuleContext:
    """Everything a rule needs to know about one parsed module."""

    path: Path
    tree: ast.Module
    source_lines: tuple[str, ...]
    module_name: str | None  # dotted name when resolvable (e.g. repro.core.mbr)
    is_library: bool  # lives under a src/ tree (shipped library code)

    @property
    def layer(self) -> str | None:
        """The architectural layer of a ``repro`` module, if any.

        ``repro.core.mbr`` -> ``core``; top-level modules such as
        ``repro.cli`` or ``repro.__init__`` map to ``top``.
        """
        if self.module_name is None:
            return None
        parts = self.module_name.split(".")
        if parts[0] != "repro":
            return None
        if len(parts) <= 2:
            return "top"
        return parts[1]

    def disabled_rules(self, line: int) -> frozenset[str]:
        """Rule codes suppressed by a ``repro-lint: disable=`` comment."""
        if not 1 <= line <= len(self.source_lines):
            return frozenset()
        match = _DISABLE_PATTERN.search(self.source_lines[line - 1])
        if match is None:
            return frozenset()
        return frozenset(
            token.strip().upper()
            for token in match.group(1).split(",")
            if token.strip()
        )
