"""File discovery, module classification, and violation reporting."""

from __future__ import annotations

import argparse
import ast
import json
import sys
from collections.abc import Iterable, Iterator, Sequence
from pathlib import Path

from tools.repro_lint.errorpaths import parse_fault_registry
from tools.repro_lint.model import ModuleContext, Violation
from tools.repro_lint.rules import ALL_RULES, Rule

__all__ = [
    "ModuleContext",
    "Violation",
    "fault_coverage",
    "lint_file",
    "lint_paths",
    "main",
    "render_json",
]


def _resolve_module_name(path: Path) -> tuple[str | None, bool]:
    """Map a file path to its dotted module name and library-ness.

    A file is *library* code when it lives under a ``src`` directory; its
    module name is derived from the path relative to that directory.
    """
    parts = path.parts
    if "src" in parts:
        index = parts.index("src")
        relative = parts[index + 1 :]
        if relative:
            pieces = list(relative[:-1]) + [Path(relative[-1]).stem]
            return ".".join(pieces), True
        return None, True
    return None, False


def _iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_file(path: Path, rules: Iterable[Rule] = ALL_RULES) -> list[Violation]:
    """Lint one file; returns violations (empty on success)."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        line = error.lineno or 1
        col = (error.offset or 1) - 1
        return [
            Violation(
                rule="REP100",
                message=f"syntax error: {error.msg}",
                path=path,
                line=line,
                col=max(col, 0),
            )
        ]
    module_name, is_library = _resolve_module_name(path)
    context = ModuleContext(
        path=path,
        tree=tree,
        source_lines=tuple(source.splitlines()),
        module_name=module_name,
        is_library=is_library,
    )
    violations = []
    for rule in rules:
        for violation in rule.check(context):
            if violation.rule in context.disabled_rules(violation.line):
                continue
            violations.append(violation)
    return violations


def lint_paths(
    paths: Sequence[Path], rules: Iterable[Rule] = ALL_RULES
) -> list[Violation]:
    """Lint every ``.py`` file under the given paths, sorted by location."""
    rules = tuple(rules)
    violations: list[Violation] = []
    for path in _iter_python_files(paths):
        violations.extend(lint_file(path, rules))
    violations.sort(key=lambda v: (str(v.path), v.line, v.col, v.rule))
    return violations


def _find_fault_registry(
    paths: Sequence[Path],
) -> tuple[Path, dict[str, int]] | None:
    """Locate the first ``FAULT_SITES`` registry under the given paths."""
    for path in _iter_python_files(paths):
        if path.name != "faults.py":
            continue
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError:
            continue
        registry = parse_fault_registry(tree)
        if registry:
            return path, registry
    return None


def _is_evidence_file(path: Path) -> bool:
    """Tests and CI smoke drivers: where a fault site must be exercised."""
    if any(part in ("tests", "tools") for part in path.parts):
        return True
    return path.name.startswith("test_")


def fault_coverage(paths: Sequence[Path]) -> list[Violation]:
    """The fault-site coverage audit behind ``--fault-coverage``.

    Every entry of the ``FAULT_SITES`` registry found under ``paths``
    must appear in at least one test or smoke-tool file — an
    uninjectable chaos site is instrumentation that no longer proves
    anything.  Returns one REP406 violation (anchored at the registry
    entry's line) per unexercised site; raises :class:`FileNotFoundError`
    when no registry exists under the given paths.
    """
    found = _find_fault_registry(paths)
    if found is None:
        raise FileNotFoundError(
            "no FAULT_SITES registry (faults.py) found under: "
            + ", ".join(str(p) for p in paths)
        )
    registry_path, registry = found
    evidence = [
        path
        for path in _iter_python_files(paths)
        if path != registry_path and _is_evidence_file(path)
    ]
    corpus = "\n".join(
        path.read_text(encoding="utf-8") for path in evidence
    )
    violations = [
        Violation(
            rule="REP406",
            message=(
                f"FAULT_SITES entry '{site}' is not exercised by any "
                "test or smoke tool under the audited paths; add a chaos "
                "test that arms it or retire the site"
            ),
            path=registry_path,
            line=line,
            col=0,
        )
        for site, line in sorted(registry.items())
        if site not in corpus
    ]
    violations.sort(key=lambda v: (str(v.path), v.line, v.col, v.rule))
    return violations


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.repro_lint",
        description="repository-specific lint rules for the repro library",
    )
    parser.add_argument(
        "paths", nargs="*", default=[], help="files or directories"
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--fault-coverage",
        action="store_true",
        help=(
            "audit mode: check every FAULT_SITES entry is exercised by a "
            "test or smoke tool (default paths: src tests tools) instead "
            "of linting"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help=(
            "violation output format: 'text' (path:line:col: CODE message) "
            "or 'json' (one JSON object per line, for CI problem matchers)"
        ),
    )
    return parser


def render_json(violation: Violation) -> str:
    """One violation as a single-line JSON record (JSON Lines).

    Key order is part of the contract — the GitHub problem matcher in
    ``.github/problem-matchers/repro-lint.json`` parses these lines with
    a regex, which only works if the fields appear in a fixed order.
    """
    record = {
        "file": str(violation.path),
        "line": violation.line,
        "col": violation.col + 1,
        "code": violation.rule,
        "summary": violation.message,
    }
    return json.dumps(record)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        width = max(len(rule.summary) for rule in ALL_RULES)
        for rule in ALL_RULES:
            print(
                f"{rule.code}  {rule.summary:<{width}}  "
                f"waiver: {rule.waiver_syntax}"
            )
        return 0
    defaults = ["src", "tests", "tools"] if args.fault_coverage else ["src", "tests"]
    paths = args.paths or defaults
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(
            f"no such file or directory: {', '.join(missing)}", file=sys.stderr
        )
        return 2
    if args.fault_coverage:
        try:
            uncovered = fault_coverage([Path(p) for p in paths])
        except FileNotFoundError as error:
            print(str(error), file=sys.stderr)
            return 2
        for violation in uncovered:
            if args.format == "json":
                print(render_json(violation))
            else:
                print(violation.render())
        if uncovered:
            print(
                f"{len(uncovered)} unexercised fault site(s)", file=sys.stderr
            )
            return 1
        return 0
    rules: tuple[Rule, ...] = ALL_RULES
    if args.select:
        wanted = {code.strip().upper() for code in args.select.split(",")}
        unknown = wanted - {rule.code for rule in ALL_RULES}
        if unknown:
            print(f"unknown rule codes: {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2
        rules = tuple(rule for rule in ALL_RULES if rule.code in wanted)
    violations = lint_paths([Path(p) for p in paths], rules)
    for violation in violations:
        if args.format == "json":
            print(render_json(violation))
        else:
            print(violation.render())
    if violations:
        print(f"{len(violations)} violation(s) found", file=sys.stderr)
        return 1
    return 0
