"""The rule implementations.

Each rule is a small object with a ``code``, a one-line ``summary``, and a
``check(context)`` generator yielding :class:`~tools.repro_lint.model.Violation`
instances.  Rules marked *library-only* are applied only to modules under a
``src/`` tree; test code is exempt (tests legitimately use ``assert``, may
reach across layers, and so on).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from tools.repro_lint.aliasing import ALIASING_RULE_SPECS
from tools.repro_lint.concurrency import CONCURRENCY_RULE_SPECS
from tools.repro_lint.errorpaths import ERRORPATH_RULE_SPECS
from tools.repro_lint.model import (
    DISTANCE_LEXICON,
    ModuleContext,
    Rule,
    Violation,
)

__all__ = [
    "ALIASING_RULES",
    "ALL_RULES",
    "CONCURRENCY_RULES",
    "DISTANCE_LEXICON",
    "ERRORPATH_RULES",
    "LAYER_ALLOWED_IMPORTS",
    "Rule",
    "VALIDATION_HELPERS",
]

# Architectural layer map: each repro.<layer> module may import only from the
# layers listed here.  ``top`` (repro/__init__.py, repro.cli, repro.__main__)
# is the composition root and may import anything.
LAYER_ALLOWED_IMPORTS: dict[str, frozenset[str]] = {
    "util": frozenset({"util"}),
    "core": frozenset({"core", "util"}),
    "index": frozenset({"index", "core", "util"}),
    "datagen": frozenset({"datagen", "core", "util"}),
    "features": frozenset({"features", "core", "util"}),
    "extensions": frozenset({"extensions", "core", "util"}),
    "baselines": frozenset({"baselines", "index", "core", "util"}),
    "analysis": frozenset(
        {"analysis", "baselines", "datagen", "index", "core", "util"}
    ),
    # The serving subsystem sits above analysis; nothing below it (and in
    # particular never core) may import it back.
    "service": frozenset({"service", "analysis", "core", "util"}),
    # Cluster coordination sits above serving: it composes whole
    # QueryEngine stacks behind a router and must never be imported back.
    "cluster": frozenset({"cluster", "service", "analysis", "core", "util"}),
    # The benchmark subsystem measures everything below it (it drives
    # engines and clusters, generates corpora, reads traces) and nothing
    # may depend on it: a production layer importing its own benchmark
    # harness would be a cycle by construction.
    "bench": frozenset(
        {
            "bench",
            "cluster",
            "service",
            "analysis",
            "datagen",
            "baselines",
            "index",
            "core",
            "util",
        }
    ),
}

# The util.validation helpers REP106 accepts as argument validation.
VALIDATION_HELPERS: frozenset[str] = frozenset(
    {
        "check_dimension",
        "check_fraction",
        "check_positive",
        "check_probability",
        "check_threshold",
    }
)

_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})


def _iter_function_defs(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, bool]]:
    """Yield ``(def, is_method)`` for every function definition in a module."""
    class_bodies: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    class_bodies.add(id(child))
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, id(node) in class_bodies


def _all_args(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[ast.arg]:
    args = node.args
    collected = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    if args.vararg is not None:
        collected.append(args.vararg)
    if args.kwarg is not None:
        collected.append(args.kwarg)
    return collected


def _check_bare_assert(rule: Rule, context: ModuleContext) -> Iterator[Violation]:
    """REP101: ``assert`` disappears under ``python -O``; raise instead."""
    if not context.is_library:
        return
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Assert):
            yield rule.violation(
                context,
                node,
                "bare assert in library code (stripped under python -O); "
                "raise ValueError/RuntimeError instead",
            )


def _check_mutable_defaults(
    rule: Rule, context: ModuleContext
) -> Iterator[Violation]:
    """REP102: mutable default arguments are shared across calls."""
    for node, _ in _iter_function_defs(context.tree):
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(
                default,
                (
                    ast.List,
                    ast.Dict,
                    ast.Set,
                    ast.ListComp,
                    ast.DictComp,
                    ast.SetComp,
                ),
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CONSTRUCTORS
            )
            if mutable:
                yield rule.violation(
                    context,
                    default,
                    f"mutable default argument in {node.name}(); "
                    "use None and create inside the function",
                )


def _check_module_all(rule: Rule, context: ModuleContext) -> Iterator[Violation]:
    """REP103: every library module declares its public surface."""
    if not context.is_library:
        return
    for node in context.tree.body:
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                return
    yield rule.violation(
        context, context.tree, "module does not define __all__"
    )


def _identifier_of(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_distance_like(node: ast.expr) -> bool:
    identifier = _identifier_of(node)
    if identifier is None:
        return False
    tokens = identifier.lower().split("_")
    return any(token in DISTANCE_LEXICON for token in tokens)


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    # -1.5 parses as UnaryOp(USub, Constant(1.5))
    return (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, float)
    )


def _check_float_equality(
    rule: Rule, context: ModuleContext
) -> Iterator[Violation]:
    """REP104: ``==`` on floating-point distances is numerically fragile."""
    if not context.is_library:
        return
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            pair = (left, right)
            if any(_is_float_literal(item) for item in pair) or any(
                _is_distance_like(item) for item in pair
            ):
                yield rule.violation(
                    context,
                    node,
                    "float equality comparison on a distance-like value; "
                    "compare with a tolerance (math.isclose) or restructure",
                )
                break


def _imported_repro_modules(context: ModuleContext) -> Iterator[tuple[ast.stmt, str]]:
    """Absolute ``repro...`` module names imported by the module."""
    package_parts = (
        context.module_name.split(".")[:-1] if context.module_name else []
    )
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    yield node, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = package_parts[: len(package_parts) - node.level + 1]
                name = ".".join(base + ([node.module] if node.module else []))
            else:
                name = node.module or ""
            if name == "repro" or name.startswith("repro."):
                yield node, name


def _layer_of_module(name: str) -> str:
    parts = name.split(".")
    if len(parts) <= 2 and not (len(parts) == 2 and parts[1] in LAYER_ALLOWED_IMPORTS):
        return "top"
    return parts[1]


def _check_layer_imports(
    rule: Rule, context: ModuleContext
) -> Iterator[Violation]:
    """REP105: enforce the layered architecture (no core -> index, etc.)."""
    layer = context.layer
    if layer is None or layer == "top" or layer not in LAYER_ALLOWED_IMPORTS:
        return
    allowed = LAYER_ALLOWED_IMPORTS[layer]
    for node, name in _imported_repro_modules(context):
        imported_layer = _layer_of_module(name)
        if imported_layer == "top":
            yield rule.violation(
                context,
                node,
                f"layer '{layer}' must not import the top-level package "
                f"'{name}' (dependency cycle)",
            )
        elif imported_layer not in allowed:
            yield rule.violation(
                context,
                node,
                f"forbidden cross-layer import: '{layer}' may not import "
                f"from '{imported_layer}' ({name}); allowed layers: "
                f"{', '.join(sorted(allowed))}",
            )


def _is_stub_body(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Whether the body is only a docstring / ``...`` / ``pass`` / ``raise``.

    Protocol methods, overloads and abstract methods declare an interface,
    not behaviour, so behavioural rules skip them.
    """
    for statement in node.body:
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Raise):
            continue
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Constant
        ):
            continue  # docstring or Ellipsis
        return False
    return True


def _calls_validation_helper(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            identifier = _identifier_of(child.func)
            if identifier in VALIDATION_HELPERS:
                return True
    return False


def _check_epsilon_validated(
    rule: Rule, context: ModuleContext
) -> Iterator[Violation]:
    """REP106: public entry points taking ``epsilon`` must validate it."""
    if not context.is_library:
        return
    for node, _ in _iter_function_defs(context.tree):
        if node.name.startswith("_"):
            continue
        names = {arg.arg for arg in _all_args(node)}
        if "epsilon" not in names:
            continue
        if _is_stub_body(node):
            continue
        if not _calls_validation_helper(node):
            yield rule.violation(
                context,
                node,
                f"public function {node.name}() takes 'epsilon' but never "
                "calls a util.validation helper (check_threshold et al.)",
            )


def _check_annotations(rule: Rule, context: ModuleContext) -> Iterator[Violation]:
    """REP107: library defs must be fully annotated (mypy strict, locally)."""
    if not context.is_library:
        return
    for node, is_method in _iter_function_defs(context.tree):
        missing: list[str] = []
        for index, arg in enumerate(_all_args(node)):
            if index == 0 and is_method and arg.arg in {"self", "cls"}:
                continue
            if arg.annotation is None:
                missing.append(arg.arg)
        if missing:
            yield rule.violation(
                context,
                node,
                f"{node.name}() has unannotated parameter(s): "
                f"{', '.join(missing)}",
            )
        if node.returns is None:
            yield rule.violation(
                context,
                node,
                f"{node.name}() has no return annotation",
            )


ALL_RULES: tuple[Rule, ...] = (
    Rule(
        "REP101",
        "no bare assert in src/ library code (use raise)",
        _check_bare_assert,
    ),
    Rule("REP102", "no mutable default arguments", _check_mutable_defaults),
    Rule("REP103", "every library module defines __all__", _check_module_all),
    Rule(
        "REP104",
        "no float equality comparisons on distance-like values",
        _check_float_equality,
    ),
    Rule(
        "REP105",
        "no forbidden cross-layer imports (layered architecture)",
        _check_layer_imports,
    ),
    Rule(
        "REP106",
        "public functions taking epsilon must call util.validation",
        _check_epsilon_validated,
    ),
    Rule(
        "REP107",
        "library defs are fully annotated (params and return)",
        _check_annotations,
    ),
)

# The concurrency-discipline (REP200–REP206), snapshot-immutability
# (REP300–REP307) and error-path (REP400–REP407) families live in their
# own modules; each exports plain (code, summary, checker) triples and
# is wrapped here with its family's waiver syntax.
CONCURRENCY_RULES: tuple[Rule, ...] = tuple(
    Rule(code, summary, checker, waiver="# thread-safe: <reason>")
    for code, summary, checker in CONCURRENCY_RULE_SPECS
)

ALIASING_RULES: tuple[Rule, ...] = tuple(
    Rule(code, summary, checker, waiver="# alias-ok: <reason>")
    for code, summary, checker in ALIASING_RULE_SPECS
)

ERRORPATH_RULES: tuple[Rule, ...] = tuple(
    Rule(code, summary, checker, waiver="# error-ok: <reason>")
    for code, summary, checker in ERRORPATH_RULE_SPECS
)

ALL_RULES = ALL_RULES + CONCURRENCY_RULES + ALIASING_RULES + ERRORPATH_RULES
