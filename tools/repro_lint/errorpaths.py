"""Error-path & cancellation discipline rules (REP400–REP407).

PR 3 built deterministic fault injection and PR 9 threaded
``Deadline``/``OperationCancelled`` through every layer — but none of
that matters if a ``try/except`` somewhere quietly eats the failure.
This family is the static half of the error-flow gate (the runtime half
is :mod:`repro.util.errtrace`): an intra-procedural pass over every
``try`` statement, raise site and fault-injection literal.

**Rules.**

* REP400 — a broad or bare ``except`` (``except:``, ``except
  Exception``, ``except BaseException``) that neither re-raises (a bare
  ``raise`` somewhere in the handler) nor carries a reasoned
  ``# error-ok: <reason>`` waiver.  Cleanup-then-reraise blocks are
  fine; silent absorption is not.
* REP401 — an ``except`` clause that names a cancellation/budget type
  (``OperationCancelled``, ``DeadlineExceeded``) and contains no
  ``raise`` at all: cancellation must always propagate (translating it,
  as the engine does with ``raise DeadlineExceeded(...) from error``,
  counts as propagation).
* REP402 — a typed-error translation that drops provenance: ``raise
  TypedError(...)`` lexically inside an ``except`` handler without a
  ``from`` clause.
* REP403 — a public function in the request-path layers (``service``,
  ``cluster``, ``bench``) raising an exception class outside the
  ``errors.py`` taxonomy and the documented caller-error builtins
  (``ValueError``/``KeyError``/``TypeError``/… and ``RuntimeError`` for
  internal invariants).
* REP404 — a retry-shaped loop (a loop containing a ``try`` whose
  handler swallows) whose protected body calls a non-idempotent
  mutation (``insert``/``append``/``remove``/``apply_records``) on a
  service-ish receiver: retrying an un-acked write can double-apply it.
* REP405 — a ``finally`` block containing ``return``/``raise``/
  ``break``/``continue`` (each masks an in-flight exception), or an
  ``__exit__`` returning ``True`` (swallows every exception in the
  ``with`` body).
* REP406 — fault-site registry drift: an ``inject("<literal>")`` whose
  site is not in ``FAULT_SITES`` (``src/repro/service/faults.py``), and
  — checked on the registry module itself — a ``FAULT_SITES`` entry no
  ``inject`` call in the tree ever fires.  Dynamic per-backend sites
  (f-strings) are exempt by design.
* REP407 — a bare ``# error-ok`` waiver without a reason.

A finding that is safe for a documented reason is waived with
``# error-ok: <reason>`` on the offending line; the reason is mandatory
(REP407).  Like the other families, the pass is lexical and
intra-procedural — the runtime sanitizer checks what actually happens.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from functools import lru_cache
from pathlib import Path

from tools.repro_lint.model import (
    Checker,
    ModuleContext,
    Rule,
    Violation,
)

__all__ = [
    "ALLOWED_PUBLIC_RAISES",
    "CANCELLATION_TYPES",
    "ERRORPATH_RULE_SPECS",
    "ERROR_OK_WAIVER",
    "ERROR_TAXONOMY",
    "NON_IDEMPOTENT_METHODS",
    "fault_registry",
    "parse_fault_registry",
    "injected_literals",
]

#: A reasoned waiver: ``# error-ok: <reason>`` (reason mandatory).
ERROR_OK_WAIVER = re.compile(r"#\s*error-ok:\s*\S")
_ERROR_OK_ANY = re.compile(r"#\s*error-ok\b")

#: The serving layer's typed-error taxonomy (``repro.service.errors``).
ERROR_TAXONOMY: frozenset[str] = frozenset(
    {
        "CircuitOpen",
        "DeadlineExceeded",
        "EngineClosed",
        "FollowerReadOnly",
        "Overloaded",
        "RepairOverflow",
        "ReplicaDiverged",
        "RetryBudgetExhausted",
        "ServiceError",
        "ShardUnavailable",
        "SnapshotRequired",
        "WriteQuorumFailed",
    }
)

#: Cancellation/budget types an ``except`` may never absorb (REP401).
CANCELLATION_TYPES: frozenset[str] = frozenset(
    {"DeadlineExceeded", "OperationCancelled"}
)

#: What a *public* service/cluster/bench function may raise: the typed
#: taxonomy, the documented caller-error builtins (bad input, unknown
#: id, duplicate id), cancellation, chaos injection, and
#: ``RuntimeError`` for internal invariant failures.
ALLOWED_PUBLIC_RAISES: frozenset[str] = ERROR_TAXONOMY | frozenset(
    {
        "FaultInjected",
        "IndexError",
        "KeyError",
        "NotImplementedError",
        "OperationCancelled",
        "RuntimeError",
        "StopIteration",
        "TypeError",
        "ValueError",
    }
)

#: Mutating calls that are not idempotent at the serving API (REP404):
#: re-sending one after an ambiguous failure can double-apply it.
NON_IDEMPOTENT_METHODS: frozenset[str] = frozenset(
    {"add", "apply_records", "append", "insert", "remove"}
)

# Receiver base names that look like a stateful serving target (the
# heuristic that keeps ``pending.append(...)`` bookkeeping out of
# REP404's blast radius).
_STATEFUL_RECEIVERS = frozenset(
    {
        "backend",
        "client",
        "coordinator",
        "database",
        "db",
        "engine",
        "follower",
        "leader",
        "node",
        "self",
        "server",
        "target",
    }
)

_BROAD_NAMES = frozenset({"BaseException", "Exception"})

# Layers whose public surface is the request path (REP403/REP404).
_REQUEST_LAYERS = frozenset({"bench", "cluster", "service"})


def _in_scope(context: ModuleContext) -> bool:
    """Library ``repro.*`` modules only; tests and scripts are exempt."""
    return context.is_library and context.layer is not None


def _waived(context: ModuleContext, line: int) -> bool:
    if not 1 <= line <= len(context.source_lines):
        return False
    return ERROR_OK_WAIVER.search(context.source_lines[line - 1]) is not None


def _last_name(node: ast.expr) -> str | None:
    """``DeadlineExceeded`` for both bare and dotted spellings."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _handler_names(handler: ast.ExceptHandler) -> frozenset[str]:
    """The exception class names one handler clause catches."""
    if handler.type is None:
        return frozenset()
    nodes = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    names = {_last_name(node) for node in nodes}
    return frozenset(name for name in names if name is not None)


def _walk_no_defs(nodes: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested def/class scopes."""
    stack: list[ast.AST] = list(nodes)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ):
                continue
            stack.append(child)


def _reraises(handler: ast.ExceptHandler) -> bool:
    """True when the handler contains a bare ``raise``."""
    return any(
        isinstance(node, ast.Raise) and node.exc is None
        for node in _walk_no_defs(handler.body)
    )


def _raises_anything(handler: ast.ExceptHandler) -> bool:
    return any(
        isinstance(node, ast.Raise) for node in _walk_no_defs(handler.body)
    )


def _receiver_base(node: ast.expr) -> str | None:
    """``self`` for ``self._wal.append``, ``target`` for ``target.insert``."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


# ----------------------------------------------------------------------
# Fault-site registry resolution (REP406 and the --fault-coverage mode)
# ----------------------------------------------------------------------
def _src_root(path: Path) -> Path | None:
    """The ``src`` directory above a linted file, if any."""
    parts = path.parts
    if "src" not in parts:
        return None
    return Path(*parts[: parts.index("src") + 1])


def parse_fault_registry(tree: ast.AST) -> dict[str, int] | None:
    """``{site: lineno}`` from a module's ``FAULT_SITES`` assignment."""
    for node in ast.walk(tree):
        target: ast.expr | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            value = node.value
        elif isinstance(node, ast.AnnAssign):
            target = node.target
            value = node.value
        else:
            continue
        if not (isinstance(target, ast.Name) and target.id == "FAULT_SITES"):
            continue
        if not isinstance(value, (ast.Tuple, ast.List)):
            continue
        sites: dict[str, int] = {}
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(
                element.value, str
            ):
                sites[element.value] = element.lineno
        return sites
    return None


@lru_cache(maxsize=8)
def fault_registry(src_root: str) -> dict[str, int] | None:
    """The ``FAULT_SITES`` registry of one source tree, or ``None``.

    Parsed from ``<src_root>/repro/service/faults.py`` so the linter
    never imports the package it is checking (CI runs it without the
    package installed).
    """
    path = Path(src_root) / "repro" / "service" / "faults.py"
    if not path.is_file():
        return None
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except SyntaxError:
        return None
    return parse_fault_registry(tree)


def _inject_site(node: ast.Call) -> str | None:
    """The literal site of an ``inject("...")`` call; None if dynamic."""
    name = _last_name(node.func)
    if name != "inject" or not node.args:
        return None
    first = node.args[0]
    if isinstance(first, ast.Constant) and isinstance(first.value, str):
        return first.value
    return None


def _is_inject_call(node: ast.Call) -> bool:
    return _last_name(node.func) == "inject" and bool(node.args)


@lru_cache(maxsize=8)
def injected_literals(src_root: str) -> frozenset[str]:
    """Every literal fault site fired by ``inject`` under a source tree."""
    sites: set[str] = set()
    for path in sorted(Path(src_root).rglob("*.py")):
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except (SyntaxError, OSError):
            continue
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                site = _inject_site(node)
                if site is not None:
                    sites.add(site)
    return frozenset(sites)


# ----------------------------------------------------------------------
# Event collection (one pass per module, shared by all eight rules)
# ----------------------------------------------------------------------
_Event = tuple[str, ast.AST, str]


def _handler_events(tree: ast.AST, events: list[_Event]) -> None:
    """REP400/REP401/REP402 over every ``except`` clause."""
    seen_raises: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Try):
            continue
        for handler in node.handlers:
            names = _handler_names(handler)
            broad = handler.type is None or bool(names & _BROAD_NAMES)
            if broad and not _reraises(handler):
                caught = ", ".join(sorted(names)) if names else "everything"
                events.append(
                    (
                        "REP400",
                        handler,
                        f"broad except ({caught}) neither re-raises nor "
                        "carries an '# error-ok: <reason>' waiver; narrow "
                        "it to the expected types or state why swallowing "
                        "is safe",
                    )
                )
            cancellation = names & CANCELLATION_TYPES
            if cancellation and not _raises_anything(handler):
                events.append(
                    (
                        "REP401",
                        handler,
                        f"except clause absorbs "
                        f"{'/'.join(sorted(cancellation))} without raising; "
                        "cancellation/budget errors must propagate (a "
                        "typed translation with 'from' counts)",
                    )
                )
            for inner in _walk_no_defs(handler.body):
                if not isinstance(inner, ast.Raise) or id(inner) in seen_raises:
                    continue
                if not isinstance(inner.exc, ast.Call):
                    continue
                raised = _last_name(inner.exc.func)
                if raised in ERROR_TAXONOMY and inner.cause is None:
                    seen_raises.add(id(inner))
                    events.append(
                        (
                            "REP402",
                            inner,
                            f"raise {raised}(...) inside an except handler "
                            "without 'from'; chain the caught original so "
                            "provenance survives the translation",
                        )
                    )


def _public_raise_events(context: ModuleContext, events: list[_Event]) -> None:
    """REP403 over public request-layer functions."""
    if context.layer not in _REQUEST_LAYERS:
        return
    for node in ast.walk(context.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name.startswith("_"):
            continue
        for inner in _walk_no_defs(node.body):
            if not isinstance(inner, ast.Raise):
                continue
            if not isinstance(inner.exc, ast.Call):
                continue
            raised = _last_name(inner.exc.func)
            if raised is None or raised in ALLOWED_PUBLIC_RAISES:
                continue
            if not raised[:1].isupper():
                # A lowercase name is an error-factory helper
                # (``raise self._overloaded_error(op)``), not a class;
                # what the factory raises is checked at its definition.
                continue
            events.append(
                (
                    "REP403",
                    inner,
                    f"public {context.layer} API '{node.name}' raises "
                    f"{raised}, outside the repro.service.errors taxonomy; "
                    "callers can only handle typed failures",
                )
            )


def _retry_events(context: ModuleContext, events: list[_Event]) -> None:
    """REP404: retry-shaped loops around non-idempotent mutations."""
    if context.layer not in _REQUEST_LAYERS:
        return
    seen_calls: set[int] = set()
    for node in ast.walk(context.tree):
        if not isinstance(node, (ast.While, ast.For)):
            continue
        for stmt in _walk_no_defs(node.body):
            if not isinstance(stmt, ast.Try):
                continue
            if not any(
                not _raises_anything(handler) for handler in stmt.handlers
            ):
                continue
            for call in _walk_no_defs(stmt.body):
                if not isinstance(call, ast.Call) or id(call) in seen_calls:
                    continue
                if not isinstance(call.func, ast.Attribute):
                    continue
                if call.func.attr not in NON_IDEMPOTENT_METHODS:
                    continue
                receiver = _receiver_base(call.func.value)
                if receiver not in _STATEFUL_RECEIVERS:
                    continue
                seen_calls.add(id(call))
                events.append(
                    (
                        "REP404",
                        call,
                        f"loop retries past a swallowed failure around "
                        f"non-idempotent '{receiver}"
                        f".{call.func.attr}(...)'; an un-acked write may "
                        "double-apply on retry",
                    )
                )


def _masking_events(tree: ast.AST, events: list[_Event]) -> None:
    """REP405: finally blocks and __exit__ bodies that mask exceptions."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Try) and node.finalbody:
            for inner in _walk_no_defs(node.finalbody):
                if isinstance(inner, (ast.Return, ast.Raise)):
                    kind = "return" if isinstance(inner, ast.Return) else "raise"
                elif isinstance(inner, (ast.Break, ast.Continue)):
                    kind = (
                        "break" if isinstance(inner, ast.Break) else "continue"
                    )
                else:
                    continue
                events.append(
                    (
                        "REP405",
                        inner,
                        f"'{kind}' inside a finally block discards any "
                        "in-flight exception; move it out of the finally",
                    )
                )
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == "__exit__"
        ):
            for inner in _walk_no_defs(node.body):
                if (
                    isinstance(inner, ast.Return)
                    and isinstance(inner.value, ast.Constant)
                    and inner.value.value is True
                ):
                    events.append(
                        (
                            "REP405",
                            inner,
                            "__exit__ returning True swallows every "
                            "exception raised in the with body",
                        )
                    )


def _fault_site_events(context: ModuleContext, events: list[_Event]) -> None:
    """REP406: inject literals vs the FAULT_SITES registry, both ways."""
    root = _src_root(context.path)
    if root is None:
        return
    registry = fault_registry(str(root))
    if registry is None:
        return
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        site = _inject_site(node)
        if site is not None and site not in registry:
            events.append(
                (
                    "REP406",
                    node,
                    f"inject site '{site}' is not registered in "
                    "FAULT_SITES (repro/service/faults.py); chaos plans "
                    "and the coverage audit cannot see it",
                )
            )
    if context.module_name == "repro.service.faults":
        fired = injected_literals(str(root))
        for site, line in sorted(registry.items()):
            if site in fired:
                continue
            events.append(
                (
                    "REP406",
                    _SyntheticNode(line),
                    f"FAULT_SITES entry '{site}' is never fired by any "
                    "inject(...) call under src/; dead registry entries "
                    "hide lost instrumentation",
                )
            )


class _SyntheticNode(ast.AST):
    """A position-only stand-in for registry entries without AST nodes."""

    __slots__ = ("lineno", "col_offset")

    def __init__(self, lineno: int) -> None:
        self.lineno = lineno
        self.col_offset = 0


@lru_cache(maxsize=16)
def _module_events(context: ModuleContext) -> tuple[_Event, ...]:
    events: list[_Event] = []
    _handler_events(context.tree, events)
    _public_raise_events(context, events)
    _retry_events(context, events)
    _masking_events(context.tree, events)
    _fault_site_events(context, events)
    return tuple(events)


def _emit(rule: Rule, context: ModuleContext, code: str) -> Iterator[Violation]:
    if not _in_scope(context):
        return
    for event_code, node, message in _module_events(context):
        if event_code != code:
            continue
        if _waived(context, getattr(node, "lineno", 1)):
            continue
        yield rule.violation(context, node, message)


def _check_broad_except(
    rule: Rule, context: ModuleContext
) -> Iterator[Violation]:
    """REP400: broad/bare excepts that swallow without a reason."""
    yield from _emit(rule, context, "REP400")


def _check_swallowed_cancellation(
    rule: Rule, context: ModuleContext
) -> Iterator[Violation]:
    """REP401: handlers that absorb cancellation/budget types."""
    yield from _emit(rule, context, "REP401")


def _check_unchained_translation(
    rule: Rule, context: ModuleContext
) -> Iterator[Violation]:
    """REP402: typed-error raises inside handlers without ``from``."""
    yield from _emit(rule, context, "REP402")


def _check_public_taxonomy(
    rule: Rule, context: ModuleContext
) -> Iterator[Violation]:
    """REP403: public request-layer APIs raising untyped exceptions."""
    yield from _emit(rule, context, "REP403")


def _check_retried_mutation(
    rule: Rule, context: ModuleContext
) -> Iterator[Violation]:
    """REP404: retry loops wrapping non-idempotent mutations."""
    yield from _emit(rule, context, "REP404")


def _check_masking_finally(
    rule: Rule, context: ModuleContext
) -> Iterator[Violation]:
    """REP405: finally/__exit__ control flow that masks exceptions."""
    yield from _emit(rule, context, "REP405")


def _check_fault_registry(
    rule: Rule, context: ModuleContext
) -> Iterator[Violation]:
    """REP406: fault-site literals drifting from FAULT_SITES."""
    yield from _emit(rule, context, "REP406")


def _check_bare_waiver(
    rule: Rule, context: ModuleContext
) -> Iterator[Violation]:
    """REP407: ``# error-ok`` without a reason."""
    if not _in_scope(context):
        return
    for line_number, line in enumerate(context.source_lines, start=1):
        match = _ERROR_OK_ANY.search(line)
        if match is None:
            continue
        if ERROR_OK_WAIVER.search(line) is not None:
            continue
        yield Violation(
            rule=rule.code,
            message=(
                "bare '# error-ok' waiver without a reason; write "
                "'# error-ok: <reason>'"
            ),
            path=context.path,
            line=line_number,
            col=match.start(),
        )


ERRORPATH_RULE_SPECS: tuple[tuple[str, str, Checker], ...] = (
    (
        "REP400",
        "broad excepts re-raise or carry a reasoned waiver",
        _check_broad_except,
    ),
    (
        "REP401",
        "cancellation/budget errors always propagate out of handlers",
        _check_swallowed_cancellation,
    ),
    (
        "REP402",
        "typed-error translations chain provenance with 'from'",
        _check_unchained_translation,
    ),
    (
        "REP403",
        "public service/cluster/bench APIs raise only taxonomy errors",
        _check_public_taxonomy,
    ),
    (
        "REP404",
        "no retry loops around non-idempotent insert/append/remove",
        _check_retried_mutation,
    ),
    (
        "REP405",
        "no return/raise inside finally; no __exit__ returning True",
        _check_masking_finally,
    ),
    (
        "REP406",
        "inject sites and the FAULT_SITES registry stay in lockstep",
        _check_fault_registry,
    ),
    (
        "REP407",
        "every # error-ok waiver carries a reason",
        _check_bare_waiver,
    ),
)
