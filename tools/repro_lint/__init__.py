"""repro_lint — repository-specific static analysis for the repro library.

The generic tools (ruff, mypy) carry the generic rules; this package carries
the rules only this codebase can express:

=========  ==============================================================
Code       Rule
=========  ==============================================================
REP101     no bare ``assert`` in ``src/`` library code (stripped by -O)
REP102     no mutable default arguments
REP103     every library module defines ``__all__``
REP104     no float equality comparisons on distance-like values
REP105     no forbidden cross-layer imports (e.g. ``core`` -> ``index``)
REP106     public functions taking ``epsilon`` must call a
           ``util.validation`` checker
REP107     every ``def`` in ``src/`` is fully annotated (params + return)
REP200     shared attributes mutated under the owning class's lock
           (``service``/``cluster`` layers; ``# thread-safe:`` waives)
REP201     nested lock acquisitions follow the declared module lock order
REP202     no blocking calls (fsync/sleep/socket/subprocess) under a lock
REP203     service/cluster locks built via ``repro.util.sync``, not
           raw ``threading`` primitives
REP204     condition ``wait``/``notify`` only under the condition's lock
REP205     no re-entry of a lock already held (lexical self-deadlock)
REP206     manual ``acquire()`` pairs with ``release()`` in a ``finally``
=========  ==============================================================

Run the gate::

    python -m tools.repro_lint src tests

Machine-readable output for CI problem matchers::

    python -m tools.repro_lint --format json src tests

A violation on a given line can be suppressed with a trailing comment::

    x == 0.0  # repro-lint: disable=REP104

The REP2xx family (static half) pairs with the runtime sanitizer in
:mod:`repro.util.sync` (``REPRO_SYNC_CHECKS=1``); see
``docs/concurrency.md`` for the lock-order table and waiver syntax.
"""

from tools.repro_lint.engine import (
    ModuleContext,
    Violation,
    lint_file,
    lint_paths,
    main,
)
from tools.repro_lint.rules import ALL_RULES, Rule

__all__ = [
    "ALL_RULES",
    "ModuleContext",
    "Rule",
    "Violation",
    "lint_file",
    "lint_paths",
    "main",
]
