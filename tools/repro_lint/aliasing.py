"""Snapshot-immutability & aliasing rules (REP300–REP307).

The engine's published snapshots are shared lock-free: readers, the
ε-cache and cluster merge all alias the same NumPy arrays, segment lists
and cache entries.  That is only sound if everything behind a publish
boundary is immutable — one in-place ``+=`` on a shared matrix silently
corrupts answers for every later request.  This family is the static
half of the gate (the runtime half is :mod:`repro.util.freeze`): an
intra-procedural dataflow pass that tracks values derived from
snapshot/frozen sources and flags writes to them.

**Tracked sources.** Per-module registries below: ``self`` attributes
registered as frozen (``engine._snapshot``, a sequence's ``_points``, a
partition's MBR matrices and segment list …), parameters/locals whose
annotation names a frozen type (``_Snapshot``, ``CacheEntry``,
``PartitionedSequence``, ``MBR`` …), and parameters/locals *registered
by name* (``snapshot``, ``entry``).  Tracking propagates through
assignment, attribute access, subscripting (views), and aliasing calls
(``np.asarray``, ``.ravel()``, ``.reshape()``, ``.items()`` …); it stops
at copies (``np.array``, ``.copy()``, ``list()``/``dict()``/``set()``,
``sorted()``, ``.tolist()``) and at the :mod:`repro.util.freeze`
constructors, which hand ownership to the runtime sanitizer.

**Rules.**

* REP300 — in-place mutation of a tracked array/view/container
  (``x += …``, ``x[i] = …``, ``del x[i]``).
* REP301 — mutating method (``.sort()``, ``.append()``, ``.update()``,
  ``.resize()`` …) called on a tracked value.
* REP302 — a public function returns a tracked mutable container
  without copying or freezing it (frozen *arrays* are read-only at rest
  and safe to return; raw segment/record lists are not).
* REP303 — an alias of a tracked array (``np.asarray``, ``ravel``,
  slicing …) stored into ``self.*`` state without a copy/freeze.
* REP304 — a constructor captures a caller-owned mutable parameter
  (``list``/``dict``/``set``/``ndarray``-annotated) without a defensive
  copy.
* REP305 — a dtype-narrowing cast (``float32``/``float16``) on a
  distance-like value; the paper's Dmbr ≤ Dnorm ≤ D pruning chain is a
  float64 contract.
* REP306 — re-enabling writeability (``setflags(write=True)``,
  ``.flags.writeable = True``) anywhere outside ``repro.util.freeze``.
* REP307 — a bare ``# alias-ok`` waiver without a reason.

A finding that is safe for a documented reason is waived with
``# alias-ok: <reason>`` on the offending line; the reason is mandatory
(REP307).  Like the other families, the pass is heuristic and
intra-procedural: it checks what is lexically visible, and the runtime
``verify_frozen`` boundaries check what actually happens.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from functools import lru_cache

from tools.repro_lint.model import (
    DISTANCE_LEXICON,
    Checker,
    ModuleContext,
    Rule,
    Violation,
)

__all__ = [
    "ALIASING_RULE_SPECS",
    "ALIAS_OK_WAIVER",
    "FROZEN_ATTR_KINDS",
    "FROZEN_PARAM_NAMES",
    "FROZEN_TYPE_NAMES",
    "MUTATING_METHODS",
    "NARROW_DTYPES",
]

#: A reasoned waiver: ``# alias-ok: <reason>`` (reason mandatory).
ALIAS_OK_WAIVER = re.compile(r"#\s*alias-ok:\s*\S")
_ALIAS_OK_ANY = re.compile(r"#\s*alias-ok\b")

_KIND_ARRAY = "array"
_KIND_CONTAINER = "container"
_KIND_STRUCT = "struct"

#: Per-module ``self`` attributes that hold published/frozen state, with
#: their kind: ``array`` (a read-only ndarray — sharing is safe, writing
#: is not), ``container`` (a mutable Python container backing published
#: state — must be copied before crossing a public boundary), ``struct``
#: (an immutable object root whose interior is tracked).
FROZEN_ATTR_KINDS: dict[str, dict[str, str]] = {
    "repro.service.engine": {"_snapshot": _KIND_STRUCT},
    "repro.core.sequence": {"_points": _KIND_ARRAY},
    "repro.core.mbr": {"_low": _KIND_ARRAY, "_high": _KIND_ARRAY},
    "repro.core.partitioning": {
        "_counts": _KIND_ARRAY,
        "_low_matrix": _KIND_ARRAY,
        "_high_matrix": _KIND_ARRAY,
        "_segments": _KIND_CONTAINER,
        "_sequence": _KIND_STRUCT,
    },
    "repro.service.wal": {"_recovered": _KIND_CONTAINER},
}

#: Annotations that mark a parameter/local as snapshot-bearing.
FROZEN_TYPE_NAMES: frozenset[str] = frozenset(
    {
        "_Snapshot",
        "CacheEntry",
        "MBR",
        "MultidimensionalSequence",
        "PartitionedSequence",
        "SequenceSegment",
    }
)

#: Names registered as snapshot-bearing wherever they appear (parameters,
#: locals, loop targets) — the shared-entry idiom of the cache/engine.
FROZEN_PARAM_NAMES: dict[str, str] = {
    "snapshot": _KIND_STRUCT,
    "entry": _KIND_STRUCT,
}

#: Methods that mutate their receiver in place.
MUTATING_METHODS: frozenset[str] = frozenset(
    {
        "add",
        "append",
        "byteswap",
        "clear",
        "discard",
        "extend",
        "fill",
        "insert",
        "itemset",
        "partition_inplace",
        "pop",
        "popitem",
        "put",
        "remove",
        "resize",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)

#: dtype spellings that narrow below the float64 distance contract.
NARROW_DTYPES: frozenset[str] = frozenset(
    {"float16", "float32", "half", "single", "f2", "f4", "<f2", "<f4"}
)

# Calls that return an independent copy — tracking stops.
_COPY_CALLS = frozenset(
    {"dict", "frozenset", "list", "set", "sorted", "tuple"}
)
# The freeze constructors hand ownership to the runtime sanitizer.
_FREEZE_CALLS = frozenset(
    {"deep_freeze", "deepcopy", "freeze", "frozen_view", "verify_frozen"}
)
# Methods returning an independent copy of the receiver.
_COPY_METHODS = frozenset({"astype", "clone", "copy", "flatten", "tolist"})
# Methods returning an alias/view over the receiver's buffer.
_ALIAS_METHODS = frozenset(
    {"diagonal", "ravel", "reshape", "squeeze", "swapaxes", "transpose", "view"}
)
# Dict/collection view methods: iterating them yields shared members.
_VIEW_METHODS = frozenset({"get", "items", "keys", "values"})
# Array attributes that alias the same buffer.
_ARRAY_VIEW_ATTRS = frozenset({"T", "base", "data", "flat", "imag", "real"})
# Attribute names that hold ndarrays on the repo's frozen types
# (MBR.low/high, sequence .points, partition matrices): reading one off
# a tracked struct yields a tracked *array*, so slices/aliases of it are
# array-kind too.
_ARRAY_ATTR_NAMES = frozenset(
    {
        "_counts",
        "_high",
        "_high_matrix",
        "_low",
        "_low_matrix",
        "_points",
        "counts",
        "high",
        "low",
        "points",
    }
)
# numpy helpers that alias their argument (no copy guarantee).
_NP_ALIASING = frozenset(
    {
        "asanyarray",
        "asarray",
        "ascontiguousarray",
        "atleast_1d",
        "atleast_2d",
        "atleast_3d",
        "ravel",
        "reshape",
        "squeeze",
        "transpose",
    }
)
# Annotation tokens marking a parameter as a caller-owned mutable.
_MUTABLE_ANNOTATIONS = frozenset(
    {
        "ArrayLike",
        "MutableMapping",
        "MutableSequence",
        "NDArray",
        "bytearray",
        "dict",
        "list",
        "ndarray",
        "set",
    }
)

_IDENTIFIER = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _in_scope(context: ModuleContext) -> bool:
    """Library ``repro.*`` modules only; tests and scripts are exempt."""
    return context.is_library and context.layer is not None


def _waived(context: ModuleContext, line: int) -> bool:
    if not 1 <= line <= len(context.source_lines):
        return False
    return ALIAS_OK_WAIVER.search(context.source_lines[line - 1]) is not None


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _np_call(func: ast.expr) -> str | None:
    """``asarray`` for ``np.asarray``/``numpy.asarray`` calls, else None."""
    dotted = _dotted(func)
    if dotted is None:
        return None
    head, _, tail = dotted.partition(".")
    if head in ("np", "numpy") and tail in _NP_ALIASING:
        return tail
    return None


def _annotation_tokens(annotation: ast.expr | None) -> frozenset[str]:
    if annotation is None:
        return frozenset()
    return frozenset(_IDENTIFIER.findall(ast.unparse(annotation)))


def _frozen_annotation(annotation: ast.expr | None) -> bool:
    """True when an annotation *is* a frozen type (``MBR``, ``MBR | None``).

    A container of frozen elements (``list[MBR]``) is a caller-owned
    container, not a frozen value, so it does not seed tracking.
    """
    meaningful = _annotation_tokens(annotation) - {"None", "Optional"}
    return len(meaningful) == 1 and meaningful <= FROZEN_TYPE_NAMES


def _is_distance_like(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        identifier = node.id
    elif isinstance(node, ast.Attribute):
        identifier = node.attr
    else:
        return False
    tokens = identifier.lower().split("_")
    return any(token in DISTANCE_LEXICON for token in tokens)


def _is_narrow_dtype(node: ast.expr) -> bool:
    if isinstance(node, ast.Attribute):
        return node.attr in NARROW_DTYPES
    if isinstance(node, ast.Name):
        return node.id in NARROW_DTYPES
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value in NARROW_DTYPES
    return False


class _Env:
    """The per-function tracking environment of the dataflow pass."""

    __slots__ = ("attr_kinds", "names")

    def __init__(self, attr_kinds: dict[str, str]) -> None:
        self.attr_kinds = attr_kinds
        self.names: dict[str, str] = {}

    def bind(self, target: ast.expr, kind: str | None) -> None:
        """Record the tracking kind a binding gives its target name(s)."""
        if isinstance(target, ast.Name):
            if kind is None:
                self.names.pop(target.id, None)
            else:
                self.names[target.id] = kind
        elif isinstance(target, (ast.Tuple, ast.List)):
            element = _KIND_STRUCT if kind is not None else None
            for item in target.elts:
                self.bind(item, element)
        elif isinstance(target, ast.Starred):
            self.bind(target.value, kind)


def _classify(expr: ast.expr | None, env: _Env) -> str | None:
    """The tracking kind of an expression's value, or None if untracked."""
    if expr is None:
        return None
    if isinstance(expr, ast.Name):
        kind = env.names.get(expr.id)
        if kind is not None:
            return kind
        return FROZEN_PARAM_NAMES.get(expr.id)
    if isinstance(expr, ast.Attribute):
        if isinstance(expr.value, ast.Name) and expr.value.id == "self":
            return env.attr_kinds.get(expr.attr)
        base = _classify(expr.value, env)
        if base is None:
            return None
        if base == _KIND_ARRAY and expr.attr in _ARRAY_VIEW_ATTRS:
            return _KIND_ARRAY
        if expr.attr in _ARRAY_ATTR_NAMES:
            return _KIND_ARRAY
        return _KIND_STRUCT
    if isinstance(expr, ast.Subscript):
        base = _classify(expr.value, env)
        if base is None:
            return None
        return _KIND_ARRAY if base == _KIND_ARRAY else _KIND_STRUCT
    if isinstance(expr, ast.Call):
        if _np_call(expr.func) is not None:
            if any(_classify(arg, env) is not None for arg in expr.args):
                return _KIND_ARRAY
            return None
        if isinstance(expr.func, ast.Attribute):
            receiver = _classify(expr.func.value, env)
            if receiver is None:
                return None
            method = expr.func.attr
            if method in _COPY_METHODS:
                return None
            if method in _ALIAS_METHODS:
                return _KIND_ARRAY if receiver == _KIND_ARRAY else _KIND_STRUCT
            if method in _VIEW_METHODS:
                return _KIND_STRUCT
            return None
        return None
    if isinstance(expr, ast.IfExp):
        return _classify(expr.body, env) or _classify(expr.orelse, env)
    if isinstance(expr, ast.BoolOp):
        for value in expr.values:
            kind = _classify(value, env)
            if kind is not None:
                return kind
        return None
    if isinstance(expr, (ast.Await, ast.Starred)):
        return _classify(expr.value, env)
    if isinstance(expr, ast.NamedExpr):
        return _classify(expr.value, env)
    return None


def _describe(expr: ast.expr) -> str:
    try:
        return ast.unparse(expr)
    except Exception:  # pragma: no cover - unparse is total on valid ASTs
        return "<expression>"


_Event = tuple[str, ast.AST, str]

_COMPOUND = (
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.If,
    ast.With,
    ast.AsyncWith,
    ast.Try,
)


def _all_args(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[ast.arg]:
    args = node.args
    collected = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    if args.vararg is not None:
        collected.append(args.vararg)
    if args.kwarg is not None:
        collected.append(args.kwarg)
    return collected


def _function_defs(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _seed_env(
    func: ast.FunctionDef | ast.AsyncFunctionDef, context: ModuleContext
) -> _Env:
    env = _Env(FROZEN_ATTR_KINDS.get(context.module_name or "", {}))
    for arg in _all_args(func):
        kind: str | None = None
        if _frozen_annotation(arg.annotation):
            kind = _KIND_STRUCT
        if arg.arg in FROZEN_PARAM_NAMES:
            kind = FROZEN_PARAM_NAMES[arg.arg]
        if kind is not None:
            env.names[arg.arg] = kind
    return env


def _mutable_params(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> frozenset[str]:
    """Parameter names annotated as caller-owned mutable containers/arrays."""
    mutable: set[str] = set()
    for arg in _all_args(func):
        if arg.arg in ("self", "cls"):
            continue
        if _annotation_tokens(arg.annotation) & _MUTABLE_ANNOTATIONS:
            mutable.add(arg.arg)
    return frozenset(mutable)


def _param_alias(expr: ast.expr, params: frozenset[str]) -> str | None:
    """The mutable parameter an expression aliases without copying, if any."""
    if isinstance(expr, ast.Name):
        return expr.id if expr.id in params else None
    if isinstance(expr, ast.Call) and _np_call(expr.func) is not None:
        for arg in expr.args:
            hit = _param_alias(arg, params)
            if hit is not None:
                return hit
        return None
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
        if expr.func.attr in _ALIAS_METHODS:
            return _param_alias(expr.func.value, params)
    return None


def _expression_events(
    root: ast.AST, env: _Env, events: list[_Event], module_name: str | None
) -> None:
    """Events detectable from any expression inside one statement."""
    for node in ast.walk(root):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not isinstance(node, ast.Call):
            continue
        if not isinstance(node.func, ast.Attribute):
            continue
        method = node.func.attr
        if method in MUTATING_METHODS:
            receiver = _classify(node.func.value, env)
            if receiver is not None:
                events.append(
                    (
                        "REP301",
                        node,
                        f"mutating method .{method}() on tracked "
                        f"snapshot-derived value "
                        f"'{_describe(node.func.value)}'; copy before "
                        "mutating",
                    )
                )
        if method == "setflags" and module_name != "repro.util.freeze":
            for keyword in node.keywords:
                if (
                    keyword.arg == "write"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value in (True, 1)
                ):
                    events.append(
                        (
                            "REP306",
                            node,
                            "setflags(write=True) re-enables writes on a "
                            "frozen array; only repro.util.freeze manages "
                            "writeability",
                        )
                    )


def _narrowing_events(root: ast.AST, events: list[_Event]) -> None:
    """REP305: dtype-narrowing casts on distance-like values."""
    targets: list[ast.expr] = []
    if isinstance(root, ast.Assign):
        targets = list(root.targets)
    elif isinstance(root, (ast.AnnAssign, ast.AugAssign)):
        targets = [root.target]
    target_is_distance = any(_is_distance_like(t) for t in targets)
    for node in ast.walk(root):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not isinstance(node, ast.Call):
            continue
        narrow_args = [a for a in node.args if _is_narrow_dtype(a)]
        narrow_kwargs = [
            k.value
            for k in node.keywords
            if k.arg == "dtype" and _is_narrow_dtype(k.value)
        ]
        if not narrow_args and not narrow_kwargs:
            continue
        if isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
            source_is_distance = _is_distance_like(node.func.value)
        else:
            source_is_distance = any(
                _is_distance_like(arg) for arg in node.args
            )
        if source_is_distance or target_is_distance:
            events.append(
                (
                    "REP305",
                    node,
                    "dtype-narrowing cast on a distance-like value; the "
                    "Dmbr <= Dnorm <= D pruning chain is a float64 "
                    "contract (Lemmas 1-3)",
                )
            )


def _walk_body(
    body: list[ast.stmt],
    env: _Env,
    events: list[_Event],
    context: ModuleContext,
    public: bool,
    in_init: bool,
    mutable_params: frozenset[str],
) -> None:
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue  # nested defs are scanned as their own functions
        if isinstance(stmt, _COMPOUND):
            # Compound statements: scan only header expressions here;
            # the recursion below covers the bodies exactly once.
            headers: list[ast.expr] = []
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                headers = [stmt.iter]
            elif isinstance(stmt, (ast.While, ast.If)):
                headers = [stmt.test]
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                headers = [item.context_expr for item in stmt.items]
            for header in headers:
                _expression_events(header, env, events, context.module_name)
                _narrowing_events(header, events)
        else:
            _expression_events(stmt, env, events, context.module_name)
            _narrowing_events(stmt, events)
        if isinstance(stmt, ast.Assign):
            value_kind = _classify(stmt.value, env)
            for target in stmt.targets:
                _assign_events(
                    target, stmt.value, value_kind, env, events,
                    in_init, mutable_params,
                )
                if isinstance(target, (ast.Name, ast.Tuple, ast.List, ast.Starred)):
                    env.bind(target, value_kind)
        elif isinstance(stmt, ast.AnnAssign):
            kind = _classify(stmt.value, env)
            if _frozen_annotation(stmt.annotation):
                kind = kind or _KIND_STRUCT
            if stmt.value is not None:
                _assign_events(
                    stmt.target, stmt.value, _classify(stmt.value, env),
                    env, events, in_init, mutable_params,
                )
            if isinstance(stmt.target, ast.Name):
                env.bind(stmt.target, kind)
        elif isinstance(stmt, ast.AugAssign):
            if _classify(stmt.target, env) is not None:
                events.append(
                    (
                        "REP300",
                        stmt,
                        f"in-place mutation of tracked snapshot-derived "
                        f"value '{_describe(stmt.target)}' "
                        "(augmented assignment); copy before mutating",
                    )
                )
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    if _classify(target.value, env) is not None:
                        events.append(
                            (
                                "REP300",
                                stmt,
                                f"in-place deletion from tracked value "
                                f"'{_describe(target.value)}'; copy before "
                                "mutating",
                            )
                        )
        elif isinstance(stmt, ast.Return):
            kind = _classify(stmt.value, env)
            if public and kind == _KIND_CONTAINER:
                events.append(
                    (
                        "REP302",
                        stmt,
                        f"public function returns tracked mutable container "
                        f"'{_describe(stmt.value) if stmt.value else ''}' "
                        "without copy()/freeze(); callers could mutate "
                        "shared snapshot state",
                    )
                )
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iterated = _classify(stmt.iter, env)
            element = None
            if iterated is not None:
                element = (
                    _KIND_ARRAY if iterated == _KIND_ARRAY else _KIND_STRUCT
                )
            env.bind(stmt.target, element)
            _walk_body(
                stmt.body + stmt.orelse, env, events, context, public,
                in_init, mutable_params,
            )
        elif isinstance(stmt, (ast.If, ast.While)):
            _walk_body(
                stmt.body + stmt.orelse, env, events, context, public,
                in_init, mutable_params,
            )
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    env.bind(
                        item.optional_vars,
                        _classify(item.context_expr, env),
                    )
            _walk_body(
                stmt.body, env, events, context, public, in_init,
                mutable_params,
            )
        elif isinstance(stmt, ast.Try):
            blocks = stmt.body + stmt.orelse + stmt.finalbody
            for handler in stmt.handlers:
                blocks = blocks + handler.body
            _walk_body(
                blocks, env, events, context, public, in_init, mutable_params
            )


def _assign_events(
    target: ast.expr,
    value: ast.expr,
    value_kind: str | None,
    env: _Env,
    events: list[_Event],
    in_init: bool,
    mutable_params: frozenset[str],
) -> None:
    if isinstance(target, ast.Subscript):
        if _classify(target.value, env) is not None:
            events.append(
                (
                    "REP300",
                    target,
                    f"in-place item assignment into tracked value "
                    f"'{_describe(target.value)}'; copy before mutating",
                )
            )
        return
    if not isinstance(target, ast.Attribute):
        return
    if not (isinstance(target.value, ast.Name) and target.value.id == "self"):
        # `x.flags.writeable = True` unfreezes through the flags proxy.
        if (
            target.attr == "writeable"
            and isinstance(target.value, ast.Attribute)
            and target.value.attr == "flags"
            and isinstance(value, ast.Constant)
            and value.value in (True, 1)
        ):
            events.append(
                (
                    "REP306",
                    target,
                    "flags.writeable = True re-enables writes on a frozen "
                    "array; only repro.util.freeze manages writeability",
                )
            )
        return
    if in_init:
        captured = _param_alias(value, mutable_params)
        if captured is not None:
            events.append(
                (
                    "REP304",
                    target,
                    f"constructor captures caller-owned mutable parameter "
                    f"'{captured}' into self.{target.attr} without a "
                    "defensive copy",
                )
            )
            return
    if value_kind in (_KIND_ARRAY, _KIND_CONTAINER):
        events.append(
            (
                "REP303",
                target,
                f"alias of tracked snapshot-derived value "
                f"'{_describe(value)}' escapes into self.{target.attr} "
                "without copy()/freeze()",
            )
        )


@lru_cache(maxsize=16)
def _module_events(context: ModuleContext) -> tuple[_Event, ...]:
    events: list[_Event] = []
    for func in _function_defs(context.tree):
        env = _seed_env(func, context)
        public = not func.name.startswith("_")
        in_init = func.name == "__init__"
        mutable_params = _mutable_params(func) if in_init else frozenset()
        _walk_body(
            func.body, env, events, context, public, in_init, mutable_params
        )
    return tuple(events)


def _emit(rule: Rule, context: ModuleContext, code: str) -> Iterator[Violation]:
    if not _in_scope(context):
        return
    for event_code, node, message in _module_events(context):
        if event_code != code:
            continue
        if _waived(context, getattr(node, "lineno", 1)):
            continue
        yield rule.violation(context, node, message)


def _check_inplace_mutation(
    rule: Rule, context: ModuleContext
) -> Iterator[Violation]:
    """REP300: in-place writes to tracked arrays/views/containers."""
    yield from _emit(rule, context, "REP300")


def _check_mutating_methods(
    rule: Rule, context: ModuleContext
) -> Iterator[Violation]:
    """REP301: mutating method calls on tracked values."""
    yield from _emit(rule, context, "REP301")


def _check_returned_containers(
    rule: Rule, context: ModuleContext
) -> Iterator[Violation]:
    """REP302: tracked mutable containers returned across public boundaries."""
    yield from _emit(rule, context, "REP302")


def _check_escaping_aliases(
    rule: Rule, context: ModuleContext
) -> Iterator[Violation]:
    """REP303: tracked aliases stored into ``self.*`` state."""
    yield from _emit(rule, context, "REP303")


def _check_constructor_capture(
    rule: Rule, context: ModuleContext
) -> Iterator[Violation]:
    """REP304: caller-owned mutables captured without a defensive copy."""
    yield from _emit(rule, context, "REP304")


def _check_dtype_narrowing(
    rule: Rule, context: ModuleContext
) -> Iterator[Violation]:
    """REP305: float32/float16 casts on distance-like values."""
    yield from _emit(rule, context, "REP305")


def _check_unfreezing(
    rule: Rule, context: ModuleContext
) -> Iterator[Violation]:
    """REP306: writeability re-enabled outside repro.util.freeze."""
    yield from _emit(rule, context, "REP306")


def _check_bare_waiver(
    rule: Rule, context: ModuleContext
) -> Iterator[Violation]:
    """REP307: ``# alias-ok`` without a reason."""
    if not _in_scope(context):
        return
    for line_number, line in enumerate(context.source_lines, start=1):
        match = _ALIAS_OK_ANY.search(line)
        if match is None:
            continue
        if ALIAS_OK_WAIVER.search(line) is not None:
            continue
        yield Violation(
            rule=rule.code,
            message=(
                "bare '# alias-ok' waiver without a reason; write "
                "'# alias-ok: <reason>'"
            ),
            path=context.path,
            line=line_number,
            col=match.start(),
        )


ALIASING_RULE_SPECS: tuple[tuple[str, str, Checker], ...] = (
    (
        "REP300",
        "no in-place writes to snapshot-derived arrays/views",
        _check_inplace_mutation,
    ),
    (
        "REP301",
        "no mutating methods on snapshot-derived lists/dicts/arrays",
        _check_mutating_methods,
    ),
    (
        "REP302",
        "tracked mutable containers are copied before public return",
        _check_returned_containers,
    ),
    (
        "REP303",
        "no unwrapped snapshot aliases stored into self.* state",
        _check_escaping_aliases,
    ),
    (
        "REP304",
        "constructors defensively copy caller-owned mutables",
        _check_constructor_capture,
    ),
    (
        "REP305",
        "no dtype-narrowing casts on distance-critical arrays",
        _check_dtype_narrowing,
    ),
    (
        "REP306",
        "array writeability is re-enabled only by repro.util.freeze",
        _check_unfreezing,
    ),
    (
        "REP307",
        "every # alias-ok waiver carries a reason",
        _check_bare_waiver,
    ),
)
