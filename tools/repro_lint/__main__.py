"""``python -m tools.repro_lint`` — run the repository lint gate."""

import sys

from tools.repro_lint.engine import main

if __name__ == "__main__":
    sys.exit(main())
