"""errtrace overhead: the disabled fast path versus a bare loop.

Every instrumented catch-site — the bench workers, the follower tail,
the HTTP boundary, the engine's cancellation translation — now calls
one of the :mod:`repro.util.errtrace` primitives (see
``docs/errors.md``); the deal is the same as for the lock and freeze
sanitizers — *zero behavioural change and negligible cost when
``REPRO_ERROR_CHECKS`` is unset*.  This benchmark keeps that honest
with three measurements of the hottest primitive:

* a bare pass loop — the floor,
* ``record_swallowed`` with checks disabled — the production
  configuration,
* ``record_swallowed`` inside :func:`checking_errors` — the counter
  update under the state lock.

The disabled path is one function call and one module-flag read, the
same shape as ``verify_frozen``'s disabled check; the budget below is
the same ~200 ns/op order.  Catch-sites only fire on *failed*
operations, so even the checks-on cost is paid per error, never per
request.
"""

from __future__ import annotations

import time

from benchmarks.conftest import publish
from repro.util.errtrace import (
    checking_errors,
    record_swallowed,
    reset_error_state,
)

OPS = 50_000

# The disabled catch-site record may cost this much per call over a
# bare loop iteration before we call the claim broken: the same budget
# as the disabled verify_frozen boundary check (~2x a disabled
# TracedLock acquire).
MAX_DISABLED_OVERHEAD_S = 4e-7


def _spin_floor(ops: int) -> float:
    started = time.perf_counter()
    for _ in range(ops):
        pass
    return time.perf_counter() - started


def _spin_record(error: Exception, ops: int) -> float:
    started = time.perf_counter()
    for _ in range(ops):
        record_swallowed(
            error, role="bench", site="bench_errtrace_overhead"
        )
    return time.perf_counter() - started


def test_errtrace_overhead(benchmark) -> None:
    error = ValueError("bench probe")
    reset_error_state()

    # Warm both paths (bytecode caches, allocator) before timing.
    _spin_floor(1000)
    _spin_record(error, 1000)

    floor_seconds = min(_spin_floor(OPS) for _ in range(3))
    disabled_seconds = min(_spin_record(error, OPS) for _ in range(3))
    with checking_errors():
        # The counter update takes the state lock; keep the round short.
        enabled_ops = OPS // 10
        enabled_seconds = min(
            _spin_record(error, enabled_ops) for _ in range(3)
        )
    reset_error_state()

    benchmark.pedantic(_spin_record, rounds=1, iterations=1, args=(error, OPS))

    per_op_floor = floor_seconds / OPS
    per_op_disabled = disabled_seconds / OPS
    per_op_enabled = enabled_seconds / enabled_ops
    overhead = per_op_disabled - per_op_floor

    assert overhead < MAX_DISABLED_OVERHEAD_S, (
        f"disabled record_swallowed costs {overhead * 1e9:.0f} ns/op over "
        f"a bare loop (budget {MAX_DISABLED_OVERHEAD_S * 1e9:.0f} ns)"
    )

    lines = [
        f"{OPS} record_swallowed calls, best of 3",
        f"bare loop iteration          : {per_op_floor * 1e9:8.1f} ns/op",
        f"record_swallowed (checks off): {per_op_disabled * 1e9:8.1f} ns/op"
        f"  (+{overhead * 1e9:.1f} ns/op)",
        f"record_swallowed (checks on) : {per_op_enabled * 1e9:8.1f} ns/op",
        "the disabled path is one module-flag read per *failed* op, so",
        "the production cost is within noise; the checks-on counter",
        "update is paid only under REPRO_ERROR_CHECKS=1 (CI's",
        "error-gate job).",
    ]
    publish("errtrace_overhead", "\n".join(lines))
