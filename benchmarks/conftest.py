"""Shared infrastructure for the figure/table benchmarks.

Every benchmark module regenerates one of the paper's tables or figures.
The expensive parts — corpus generation, database construction, the full
threshold sweep — run once per session in fixtures; the ``benchmark(...)``
calls then time the representative operations (a single search, an index
build) without re-running the sweeps.

Scale is controlled by the ``REPRO_SCALE`` environment variable:

========  ===========================  =============================
scale     corpus                       sweep
========  ===========================  =============================
smoke     120 sequences                3 queries x 4 thresholds
medium    400 sequences (default)     8 queries x 10 thresholds
paper     1600 / 1408 sequences        20 queries x 10 thresholds
========  ===========================  =============================

``paper`` reproduces Table 2 exactly.  Each module writes its series
(measured next to the paper's reported band) to ``benchmarks/results/`` and
prints it, so a ``pytest benchmarks/ --benchmark-only`` run leaves the full
figure set on disk.
"""

from __future__ import annotations

import datetime
import os
from pathlib import Path

import pytest

from repro.analysis.experiment import ExperimentConfig, ExperimentRunner
from repro.bench import (
    BenchResult,
    detect_git_sha,
    detect_machine,
    write_trajectory,
)

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_collect_file(
    file_path: Path, parent: pytest.Collector
) -> "pytest.Module | None":
    """Collect ``bench_*.py`` modules when benchmarks/ is targeted.

    The repository-wide ``python_files`` pattern deliberately excludes
    ``bench_*.py`` so tier-1 ``pytest`` runs never import the benchmark
    modules; this hook restores collection for explicit
    ``pytest benchmarks/`` invocations.
    """
    if file_path.name.startswith("bench_") and file_path.suffix == ".py":
        return pytest.Module.from_parent(parent, path=file_path)
    return None


def pytest_collection_modifyitems(items: "list[pytest.Item]") -> None:
    """Tag every benchmark test with the ``bench`` marker."""
    for item in items:
        if Path(str(item.fspath)).name.startswith("bench_"):
            item.add_marker(pytest.mark.bench)

_SCALES = {
    "smoke": dict(
        n_synthetic=120,
        n_video=120,
        queries_per_threshold=3,
        thresholds=(0.05, 0.15, 0.30, 0.50),
    ),
    "medium": dict(
        n_synthetic=400,
        n_video=400,
        queries_per_threshold=8,
        thresholds=tuple(round(0.05 * i, 2) for i in range(1, 11)),
    ),
    "paper": dict(
        n_synthetic=1600,
        n_video=1408,
        queries_per_threshold=20,
        thresholds=tuple(round(0.05 * i, 2) for i in range(1, 11)),
    ),
}


def current_scale() -> str:
    scale = os.environ.get("REPRO_SCALE", "medium")
    if scale not in _SCALES:
        raise ValueError(
            f"REPRO_SCALE must be one of {sorted(_SCALES)}, got {scale!r}"
        )
    return scale


def scale_parameters() -> dict:
    return dict(_SCALES[current_scale()])


@pytest.fixture(scope="session")
def scale() -> str:
    return current_scale()


@pytest.fixture(scope="session")
def synthetic_runner() -> ExperimentRunner:
    params = scale_parameters()
    config = ExperimentConfig.paper_synthetic(
        n_sequences=params["n_synthetic"],
        queries_per_threshold=params["queries_per_threshold"],
        thresholds=params["thresholds"],
    )
    return ExperimentRunner(config)


@pytest.fixture(scope="session")
def video_runner() -> ExperimentRunner:
    params = scale_parameters()
    config = ExperimentConfig.paper_video(
        n_sequences=params["n_video"],
        queries_per_threshold=params["queries_per_threshold"],
        thresholds=params["thresholds"],
    )
    return ExperimentRunner(config)


@pytest.fixture(scope="session")
def synthetic_rows(synthetic_runner):
    """The full Figure 6/8/10 sweep over the synthetic corpus, run once."""
    return synthetic_runner.run()


@pytest.fixture(scope="session")
def video_rows(video_runner):
    """The full Figure 7/9/10 sweep over the video corpus, run once."""
    return video_runner.run()


def publish(name: str, text: str) -> None:
    """Print a figure table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"\n===== {name} (scale={current_scale()}) =====\n{text}\n"
    print(banner)
    (RESULTS_DIR / f"{name}.txt").write_text(banner.lstrip("\n"))


def publish_trajectory(suite: str, results: "list[BenchResult]") -> Path:
    """Write a ``BENCH_<suite>.json`` trajectory under benchmarks/results/.

    The machine-readable companion to :func:`publish`: the same numbers
    the human-readable table reports, emitted through the canonical
    ``repro.bench`` trajectory schema so benchmark runs from different
    commits can be diffed with ``repro bench-diff``.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    timestamp = datetime.datetime.now(datetime.timezone.utc).isoformat(
        timespec="seconds"
    )
    return write_trajectory(
        RESULTS_DIR,
        suite,
        results,
        machine=detect_machine(),
        git_sha=detect_git_sha(str(Path(__file__).parent.parent)),
        timestamp=timestamp,
        profile=current_scale(),
        seed=0,
    )
