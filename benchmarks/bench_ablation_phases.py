"""Ablation — how much does each pruning phase contribute?

The algorithm prunes twice: Phase 2 with ``Dmbr`` through the index, then
Phase 3 with ``Dnorm`` over the survivors.  This bench separates their
contributions (candidates vs answers vs ground truth) across the threshold
sweep, and measures what Phase 3 costs on top of Phase 2.
"""

from benchmarks.conftest import publish
from repro.analysis.report import format_table
from repro.datagen.queries import generate_queries


def test_ablation_phase_contributions(benchmark, synthetic_runner):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    corpus = {
        sid: synthetic_runner.database.sequence(sid)
        for sid in synthetic_runner.database.ids()
    }
    total = len(corpus)
    queries = generate_queries(corpus, 6, seed=1234)

    database = synthetic_runner.database
    mean_segments = database.segment_count / max(1, len(database))

    rows = []
    for epsilon in (0.05, 0.15, 0.30):
        candidates = answers = relevant = 0
        phase2_seconds = phase3_seconds = 0.0
        method_work = scan_work = 0
        for query in queries:
            result = synthetic_runner.engine.search(
                query, epsilon, find_intervals=False
            )
            scan = synthetic_runner.scanner.scan(
                query, epsilon, find_intervals=False
            )
            candidates += len(result.candidates)
            answers += len(result.answers)
            relevant += len(scan.answers)
            phase2_seconds += result.stats.phase2_seconds
            phase3_seconds += result.stats.phase3_seconds
            # Element-operation accounting, substrate-independent:
            # the scan computes one point distance per (alignment, query
            # point); the method tests one rectangle per node child during
            # probes plus one O(1) window evaluation per Dnorm anchor.
            k = len(query)
            scan_work += sum(
                max(0, len(corpus[sid]) - k + 1) * k for sid in corpus
            )
            method_work += (
                result.stats.node_accesses * database.max_entries
                + result.stats.dnorm_evaluations
                + int(result.stats.dmbr_rows * mean_segments)
            )
        rows.append(
            [
                epsilon,
                candidates / len(queries),
                answers / len(queries),
                relevant / len(queries),
                phase2_seconds,
                phase3_seconds,
                scan_work / max(1, method_work),
            ]
        )

    publish(
        "ablation_phases",
        format_table(
            [
                "epsilon",
                "after_phase2",
                "after_phase3",
                "relevant",
                "phase2_s",
                "phase3_s",
                "work_ratio",
            ],
            rows,
        )
        + f"\n(database: {total} sequences; Phase 3 can only shrink the "
        f"candidate set, never below the relevant set; work_ratio = scan "
        f"element ops / method ops, independent of numpy vectorisation)",
    )

    for epsilon, candidates, answers, relevant, _, _, work_ratio in rows:
        assert relevant <= answers <= candidates
        assert work_ratio > 1.0, "the method must do less raw work"


def test_phase2_only_benchmark(benchmark, synthetic_runner):
    """Index probe cost alone (Phase 1 + 2, no Dnorm, no intervals)."""
    corpus = {
        sid: synthetic_runner.database.sequence(sid)
        for sid in synthetic_runner.database.ids()
    }
    query = generate_queries(corpus, 1, seed=4321)[0]
    from repro.core.partitioning import partition_sequence

    index = synthetic_runner.database.index

    def phase2():
        hits = set()
        for segment in partition_sequence(query):
            for entry in index.search_within(segment.mbr, 0.15):
                hits.add(entry.payload.sequence_id)
        return hits

    hits = benchmark(phase2)
    assert isinstance(hits, set)


def test_full_search_benchmark(benchmark, synthetic_runner):
    corpus = {
        sid: synthetic_runner.database.sequence(sid)
        for sid in synthetic_runner.database.ids()
    }
    query = generate_queries(corpus, 1, seed=4321)[0]
    benchmark(synthetic_runner.engine.search, query, 0.15)
