"""Serving throughput — what the repro.service layer buys (and costs).

Not a figure in the paper: the serving subsystem is infrastructure on top
of it.  Measured here, against one corpus and one query workload:

* single-threaded ``SimilaritySearch`` latency (the baseline everything
  else wraps);
* ``QueryEngine`` throughput with the ε-aware cache off — the worker-pool
  and snapshot plumbing overhead;
* ``QueryEngine`` throughput with the cache on, over a workload with
  repeated and tightened queries — where hits answer from memory and
  refines skip Phases 1-2.

Asserted shape: every engine configuration returns exactly the baseline's
answer sets (the serving layer may never change results), and the cached
engine does no worse than half the uncached engine's throughput on the
repeat-heavy workload (in practice it is far faster).
"""

import time

from benchmarks.conftest import publish, publish_trajectory, scale_parameters
from repro.bench import BenchResult
from repro.core.database import SequenceDatabase
from repro.core.search import SimilaritySearch
from repro.datagen.queries import generate_queries
from repro.datagen.video import generate_video_corpus
from repro.service.engine import QueryEngine

# Repeat-and-tighten workload per query: the second 0.15 is an exact
# cache hit, the tighter thresholds exercise the refine path.
EPSILONS = (0.15, 0.15, 0.10, 0.05)


def _workload(database: SequenceDatabase, queries: int):
    workload = generate_queries(
        {sid: database.sequence(sid) for sid in database.ids()},
        queries,
        length_range=(40, 80),
        seed=902,
    )
    return [(query, epsilon) for query in workload for epsilon in EPSILONS]


def test_service_throughput(benchmark):
    params = scale_parameters()
    corpus = generate_video_corpus(
        params["n_video"], length_range=(56, 256), seed=901
    )
    database = SequenceDatabase(dimension=3)
    for stream in corpus:
        database.add(stream)
    requests = _workload(database, max(2, params["queries_per_threshold"]))

    baseline = SimilaritySearch(database.clone())
    started = time.perf_counter()
    expected = [
        baseline.search(query, epsilon, find_intervals=False).answers
        for query, epsilon in requests
    ]
    baseline_seconds = time.perf_counter() - started

    def run_engine(cache_size: int) -> tuple[float, list]:
        with QueryEngine(
            database.clone(), workers=4, cache_size=cache_size
        ) as engine:
            t0 = time.perf_counter()
            answers = [
                engine.search(query, epsilon, find_intervals=False).answers
                for query, epsilon in requests
            ]
            return time.perf_counter() - t0, answers

    uncached_seconds, uncached_answers = run_engine(0)
    cached_seconds, cached_answers = benchmark.pedantic(
        run_engine, rounds=1, iterations=1, args=(256,)
    )

    assert uncached_answers == expected, "uncached engine changed results"
    assert cached_answers == expected, "cached engine changed results"
    assert cached_seconds <= 2.0 * uncached_seconds, (
        f"cache made the repeat-heavy workload pathologically slower: "
        f"{cached_seconds:.3f}s vs {uncached_seconds:.3f}s"
    )

    n = len(requests)
    lines = [
        f"{n} requests ({len(requests) // len(EPSILONS)} queries x "
        f"thresholds {EPSILONS})",
        f"baseline SimilaritySearch : {n / baseline_seconds:8.1f} req/s",
        f"QueryEngine, cache off    : {n / uncached_seconds:8.1f} req/s",
        f"QueryEngine, cache on     : {n / cached_seconds:8.1f} req/s",
    ]
    publish("service_throughput", "\n".join(lines))
    publish_trajectory(
        "service_throughput",
        [
            BenchResult(
                suite="service_throughput",
                scenario="baseline_search",
                metrics={"qps": n / baseline_seconds},
                meta={"requests": n},
            ),
            BenchResult(
                suite="service_throughput",
                scenario="engine_cache_off",
                metrics={"qps": n / uncached_seconds},
                meta={"requests": n},
            ),
            BenchResult(
                suite="service_throughput",
                scenario="engine_cache_on",
                metrics={"qps": n / cached_seconds},
                meta={"requests": n, "cache_size": 256},
            ),
        ],
    )
