"""Figure 10 — response-time ratio versus the sequential scan.

Paper's series: the method answers 22-28x faster than the sequential scan
on the synthetic corpus and 16-23x faster on video (total time for
candidate selection *and* solution-interval estimation, §4.2.3).

Absolute ratios are substrate-dependent — the paper timed two C++
implementations on an HP NetServer, we time two Python implementations of
which the scan baseline enjoys numpy vectorisation — so the asserted shape
is: the method beats the scan decisively at selective thresholds, never
catastrophically loses anywhere, and the ratio series is reported next to
the paper's band for comparison.

Benchmarked: one method search and one sequential scan of the same query,
so the per-operation numbers land in the pytest-benchmark table too.
"""

from benchmarks.conftest import publish
from repro.analysis.report import figure_table, format_table
from repro.datagen.queries import generate_queries


def test_fig10_response_ratio_series(benchmark, synthetic_rows, video_rows):
    synthetic = benchmark.pedantic(
        figure_table, rounds=1, iterations=1, args=("fig10", synthetic_rows)
    )
    video = figure_table("fig10", video_rows)
    combined = format_table(
        ["epsilon", "synthetic_ratio", "video_ratio"],
        [
            [s.epsilon, s.response_ratio, v.response_ratio]
            for s, v in zip(synthetic_rows, video_rows)
        ],
    )
    publish(
        "fig10_response_time",
        f"{combined}\n(paper: 22-28x synthetic, 16-23x video; both sides "
        f"here are Python, the scan numpy-vectorised — see EXPERIMENTS.md)",
    )
    assert synthetic and video

    # Shape: decisive win at the tight end of the sweep...
    assert synthetic_rows[0].response_ratio > 5.0
    assert video_rows[0].response_ratio > 5.0
    # ...and no catastrophic loss anywhere in the range.
    for row in [*synthetic_rows, *video_rows]:
        assert row.response_ratio > 0.3


def test_fig10_method_benchmark(benchmark, synthetic_runner):
    corpus = {
        sid: synthetic_runner.database.sequence(sid)
        for sid in synthetic_runner.database.ids()
    }
    query = generate_queries(corpus, 1, seed=1010)[0]
    benchmark(synthetic_runner.engine.search, query, 0.15)


def test_fig10_sequential_scan_benchmark(benchmark, synthetic_runner):
    corpus = {
        sid: synthetic_runner.database.sequence(sid)
        for sid in synthetic_runner.database.ids()
    }
    query = generate_queries(corpus, 1, seed=1010)[0]
    benchmark(synthetic_runner.scanner.scan, query, 0.15)
