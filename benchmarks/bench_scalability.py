"""Scalability — how the method and the scan grow with corpus size.

Not a figure in the paper, but the claim underneath Figure 10: the
sequential scan's cost is linear in the corpus' total points, while the
method's cost follows the candidate set (index probes prune whole
subtrees).  Measured here: per-query times and the response ratio across a
doubling corpus-size ladder, at a selective threshold.  The asserted shape:
the ratio at the largest corpus is at least the ratio at the smallest
(i.e., the method's advantage does not shrink as data grows).
"""

import time

import numpy as np

from benchmarks.conftest import current_scale, publish
from repro.analysis.report import format_table
from repro.baselines.sequential import SequentialScan
from repro.core.database import SequenceDatabase
from repro.core.search import SimilaritySearch
from repro.datagen.queries import generate_queries
from repro.datagen.video import generate_video_corpus

EPSILON = 0.1
QUERIES = 6

_LADDERS = {
    "smoke": (50, 100, 200),
    "medium": (100, 200, 400, 800),
    "paper": (200, 400, 800, 1600),
}


def test_scalability_ladder(benchmark):
    ladder = _LADDERS[current_scale()]
    corpus = benchmark.pedantic(
        generate_video_corpus,
        rounds=1,
        iterations=1,
        args=(ladder[-1],),
        kwargs=dict(length_range=(56, 256), seed=404),
    )

    rows = []
    ratios = []
    for size in ladder:
        database = SequenceDatabase(dimension=3)
        build_started = time.perf_counter()
        for stream in corpus[:size]:
            database.add(stream)
        build_seconds = time.perf_counter() - build_started

        engine = SimilaritySearch(database)
        scanner = SequentialScan.from_database(database)
        queries = generate_queries(
            {sid: database.sequence(sid) for sid in database.ids()},
            QUERIES,
            seed=405,
        )

        method_seconds = scan_seconds = 0.0
        for query in queries:
            started = time.perf_counter()
            engine.search(query, EPSILON)
            method_seconds += time.perf_counter() - started
            scan_seconds += scanner.scan(query, EPSILON).seconds

        ratio = scan_seconds / method_seconds
        ratios.append(ratio)
        rows.append(
            [
                size,
                database.point_count,
                build_seconds,
                method_seconds / QUERIES * 1e3,
                scan_seconds / QUERIES * 1e3,
                ratio,
            ]
        )

    publish(
        "scalability",
        format_table(
            [
                "sequences",
                "points",
                "build_s",
                "method_ms/q",
                "scan_ms/q",
                "ratio",
            ],
            rows,
        )
        + f"\n(epsilon={EPSILON}; the method's advantage must not shrink "
        f"with corpus size)",
    )

    # Allow timing noise, forbid collapse: an 8x bigger corpus must not
    # halve the advantage.
    assert ratios[-1] >= ratios[0] * 0.5
    # The scan must grow roughly linearly with the point count.
    points = [row[1] for row in rows]
    scans = [row[4] for row in rows]
    growth = (scans[-1] / scans[0]) / (points[-1] / points[0])
    assert 0.3 < growth < 3.0


def test_search_at_largest_size_benchmark(benchmark):
    corpus = generate_video_corpus(
        _LADDERS[current_scale()][-1], length_range=(56, 256), seed=404
    )
    database = SequenceDatabase(dimension=3)
    for stream in corpus:
        database.add(stream)
    engine = SimilaritySearch(database)
    query = generate_queries(
        {sid: database.sequence(sid) for sid in database.ids()}, 1, seed=406
    )[0]
    benchmark(engine.search, query, EPSILON)
