"""TracedLock overhead: the disabled fast path versus ``threading.Lock``.

The serving and cluster layers took every lock through
:class:`repro.util.sync.TracedLock` in the concurrency-gate change; the
deal was *zero behavioural change and negligible cost when
``REPRO_SYNC_CHECKS`` is unset*.  This benchmark keeps that honest with
three measurements of the same acquire/release loop:

* raw ``threading.Lock`` — the floor,
* ``TracedLock`` with checks disabled — the production configuration,
* ``TracedLock`` inside :func:`checking_sync` — the sanitizer's price.

The disabled path adds one Python method dispatch and one module-flag
read per acquire.  That is sub-microsecond per operation — orders of
magnitude below a single Phase-1 index probe, which is why it is within
noise for every real request the engine serves (an engine request takes
milliseconds and acquires a handful of locks).
"""

from __future__ import annotations

import threading
import time

from benchmarks.conftest import publish
from repro.util.sync import TracedLock, checking_sync, reset_sync_state

OPS = 50_000

# The disabled wrapper may cost this much per acquire/release pair over
# the raw primitive before we call the claim broken.  2 µs/op is ~1000x
# smaller than a single served search; the observed overhead is
# typically well under 1 µs.
MAX_DISABLED_OVERHEAD_S = 2e-6


def _spin(lock: "threading.Lock | TracedLock", ops: int) -> float:
    started = time.perf_counter()
    for _ in range(ops):
        with lock:
            pass
    return time.perf_counter() - started


def test_sync_overhead(benchmark) -> None:
    raw = threading.Lock()
    traced = TracedLock("bench.sync-overhead")
    reset_sync_state()

    # Warm both paths (bytecode caches, allocator) before timing.
    _spin(raw, 1000)
    _spin(traced, 1000)

    raw_seconds = min(_spin(raw, OPS) for _ in range(3))
    disabled_seconds = min(_spin(traced, OPS) for _ in range(3))
    with checking_sync():
        enabled_seconds = min(_spin(traced, OPS) for _ in range(3))
    reset_sync_state()

    benchmark.pedantic(_spin, rounds=1, iterations=1, args=(traced, OPS))

    per_op_raw = raw_seconds / OPS
    per_op_disabled = disabled_seconds / OPS
    per_op_enabled = enabled_seconds / OPS
    overhead = per_op_disabled - per_op_raw

    assert overhead < MAX_DISABLED_OVERHEAD_S, (
        f"disabled TracedLock costs {overhead * 1e9:.0f} ns/op over a raw "
        f"threading.Lock (budget {MAX_DISABLED_OVERHEAD_S * 1e9:.0f} ns)"
    )

    lines = [
        f"{OPS} uncontended acquire/release pairs, best of 3",
        f"threading.Lock           : {per_op_raw * 1e9:8.1f} ns/op",
        f"TracedLock (checks off)  : {per_op_disabled * 1e9:8.1f} ns/op"
        f"  (+{overhead * 1e9:.1f} ns/op)",
        f"TracedLock (checks on)   : {per_op_enabled * 1e9:8.1f} ns/op",
        "a served search costs milliseconds and takes a handful of lock",
        "acquisitions, so the disabled-path delta is within noise per",
        "request; the checks-on price is paid only under",
        "REPRO_SYNC_CHECKS=1 (CI and stress tests).",
    ]
    publish("sync_overhead", "\n".join(lines))
