"""verify_frozen overhead: the disabled fast path versus a bare loop.

Every snapshot publication, checkpoint, and index boundary now calls
:func:`repro.util.freeze.verify_frozen` on the structure it is about to
share (see ``docs/immutability.md``); the deal was the same as for the
lock sanitizer — *zero behavioural change and negligible cost when
``REPRO_FREEZE_CHECKS`` is unset*.  This benchmark keeps that honest
with three measurements of the same boundary call on a real partitioned
sequence:

* a bare pass loop — the floor,
* ``verify_frozen`` with checks disabled — the production configuration,
* ``verify_frozen`` inside :func:`checking_freeze` — the sanitizer's
  full object-graph walk.

The disabled path is one function call and one module-flag read, the
same shape as ``TracedLock``'s disabled acquire (~190 ns/op, see
``results/sync_overhead.txt``); the budget below allows twice that.
An engine write publishes one snapshot, so even the checks-on walk is
paid once per write, never per comparison.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import publish
from repro.core.partitioning import PartitionedSequence, partition_sequence
from repro.core.sequence import MultidimensionalSequence
from repro.util.freeze import checking_freeze, reset_freeze_state, verify_frozen

OPS = 50_000

# The disabled boundary check may cost this much per call over a bare
# loop iteration before we call the claim broken: twice the disabled
# TracedLock acquire (~190 ns/op), and ~4 decimal orders of magnitude
# below one served search.
MAX_DISABLED_OVERHEAD_S = 4e-7


def _spin_floor(ops: int) -> float:
    started = time.perf_counter()
    for _ in range(ops):
        pass
    return time.perf_counter() - started


def _spin_verify(partition: PartitionedSequence, ops: int) -> float:
    started = time.perf_counter()
    for _ in range(ops):
        verify_frozen(partition, role="bench", site="bench_freeze_overhead")
    return time.perf_counter() - started


def test_freeze_overhead(benchmark) -> None:
    rng = np.random.default_rng(7)
    sequence = MultidimensionalSequence(rng.random((64, 3)))
    partition = partition_sequence(sequence)
    reset_freeze_state()

    # Warm both paths (bytecode caches, allocator) before timing.
    _spin_floor(1000)
    _spin_verify(partition, 1000)

    floor_seconds = min(_spin_floor(OPS) for _ in range(3))
    disabled_seconds = min(_spin_verify(partition, OPS) for _ in range(3))
    with checking_freeze():
        # The full graph walk is ~1000x the flag read; keep the round short.
        enabled_ops = OPS // 50
        enabled_seconds = min(
            _spin_verify(partition, enabled_ops) for _ in range(3)
        )
    reset_freeze_state()

    benchmark.pedantic(_spin_verify, rounds=1, iterations=1, args=(partition, OPS))

    per_op_floor = floor_seconds / OPS
    per_op_disabled = disabled_seconds / OPS
    per_op_enabled = enabled_seconds / enabled_ops
    overhead = per_op_disabled - per_op_floor

    assert overhead < MAX_DISABLED_OVERHEAD_S, (
        f"disabled verify_frozen costs {overhead * 1e9:.0f} ns/op over a "
        f"bare loop (budget {MAX_DISABLED_OVERHEAD_S * 1e9:.0f} ns)"
    )

    lines = [
        f"{OPS} verify_frozen calls on a 64-point partition, best of 3",
        f"bare loop iteration       : {per_op_floor * 1e9:8.1f} ns/op",
        f"verify_frozen (checks off): {per_op_disabled * 1e9:8.1f} ns/op"
        f"  (+{overhead * 1e9:.1f} ns/op)",
        f"verify_frozen (checks on) : {per_op_enabled * 1e9:8.1f} ns/op",
        "the disabled path is one module-flag read per publish boundary",
        "(an engine write publishes one snapshot), so the production cost",
        "is within noise; the checks-on graph walk is paid only under",
        "REPRO_FREEZE_CHECKS=1 (CI's immutability-gate job).",
    ]
    publish("freeze_overhead", "\n".join(lines))
