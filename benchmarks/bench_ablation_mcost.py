"""Ablation — the MCOST partitioning constant and the per-MBR point cap.

The paper fixes ``Q_k + eps = 0.3`` "since it demonstrates the best
partitioning by an extensive experiment" without showing that experiment.
This bench re-runs it: the constant is swept over 0.1-0.5 (and the point
cap over three values) on a scaled-down corpus, and for each setting the
estimated total access cost, segment count and the end-to-end pruning rate
of a small query batch are reported.
"""

import numpy as np

from benchmarks.conftest import publish
from repro.analysis.experiment import ExperimentConfig, ExperimentRunner
from repro.analysis.report import format_table
from repro.core.partitioning import partition_sequence
from repro.datagen.fractal import generate_fractal_corpus

CONSTANTS = (0.1, 0.2, 0.3, 0.4, 0.5)
CAPS = (16, 64, 256)
EPSILON = 0.15


def _corpus():
    return generate_fractal_corpus(120, length_range=(56, 256), seed=77)


def test_ablation_cost_constant(benchmark):
    corpus = benchmark.pedantic(_corpus, rounds=1, iterations=1)
    rows = []
    best_constant = None
    best_ratio = -1.0
    for constant in CONSTANTS:
        config = ExperimentConfig.smoke_synthetic(
            n_sequences=len(corpus),
            queries_per_threshold=4,
            thresholds=(EPSILON,),
            cost_constant=constant,
        )
        runner = ExperimentRunner(config, corpus=corpus)
        row = runner.run()[0]
        segments = runner.database.segment_count
        rows.append(
            [constant, segments, row.pr_dnorm, row.si_pruning, row.response_ratio]
        )
        if row.response_ratio > best_ratio:
            best_ratio = row.response_ratio
            best_constant = constant
    table = format_table(
        ["Qk+eps", "segments", "PR_dnorm", "SI_pruning", "ratio"], rows
    )
    publish(
        "ablation_mcost_constant",
        f"{table}\n(paper adopts 0.3; best end-to-end ratio here: "
        f"{best_constant})",
    )
    # The paper's choice must at least be competitive: within 40% of the
    # best ratio measured in the sweep.
    paper_row = next(r for r in rows if r[0] == 0.3)
    assert paper_row[4] >= 0.6 * best_ratio


def test_ablation_max_points(benchmark):
    corpus = benchmark.pedantic(_corpus, rounds=1, iterations=1)
    rows = []
    for cap in CAPS:
        config = ExperimentConfig.smoke_synthetic(
            n_sequences=len(corpus),
            queries_per_threshold=4,
            thresholds=(EPSILON,),
            max_points=cap,
        )
        runner = ExperimentRunner(config, corpus=corpus)
        row = runner.run()[0]
        rows.append(
            [
                cap,
                runner.database.segment_count,
                row.pr_dnorm,
                row.si_pruning,
                row.si_recall,
                row.response_ratio,
            ]
        )
    publish(
        "ablation_max_points",
        format_table(
            ["max_points", "segments", "PR_dnorm", "SI_pruning", "SI_recall", "ratio"],
            rows,
        ),
    )
    # Finer partitions give at least as good interval pruning.
    si_by_cap = {row[0]: row[3] for row in rows}
    assert si_by_cap[16] >= si_by_cap[256] - 0.05


def test_partitioning_benchmark(benchmark):
    corpus = _corpus()
    points = corpus[0].points

    def run():
        return partition_sequence(points)

    partition = benchmark(run)
    assert len(partition) >= 1


def test_segment_population_stats(benchmark):
    """Report the segment-population distribution MCOST produces."""
    corpus = benchmark.pedantic(_corpus, rounds=1, iterations=1)
    counts = np.concatenate(
        [partition_sequence(seq).counts for seq in corpus]
    )
    publish(
        "ablation_mcost_populations",
        f"segments={counts.size}  mean={counts.mean():.1f}  "
        f"median={np.median(counts):.0f}  p90={np.percentile(counts, 90):.0f}  "
        f"max={counts.max()}",
    )
    assert counts.min() >= 1
