"""Figure 7 — pruning rates of Dmbr and Dnorm on the video corpus.

Paper's series: ``Dmbr`` 65-91%, ``Dnorm`` 73-94%, falling with the
threshold; the video corpus prunes *better* than the synthetic one at tight
thresholds because shots cluster (§4.2.2).  Shape assertions mirror
Figure 6, plus the cross-corpus comparison at the tightest threshold.
"""

from benchmarks.conftest import publish
from repro.analysis.report import figure_table
from repro.datagen.queries import generate_queries


def test_fig7_pruning_series(benchmark, video_rows):
    table = benchmark.pedantic(
        figure_table, rounds=1, iterations=1, args=("fig7", video_rows)
    )
    publish("fig7_pruning_video", table)

    for row in video_rows:
        assert row.answer_recall == 1.0, "false dismissal detected"
        assert row.pr_dnorm >= row.pr_dmbr - 1e-12

    first, last = video_rows[0], video_rows[-1]
    assert first.pr_dmbr > last.pr_dmbr


def test_fig7_video_prunes_well_when_selective(benchmark, video_rows):
    """At the tightest threshold the clustered video corpus must prune the
    vast majority of irrelevant streams (paper: ~91%)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert video_rows[0].pr_dnorm >= 0.75


def test_fig7_search_benchmark(benchmark, video_runner):
    corpus = {
        sid: video_runner.database.sequence(sid)
        for sid in video_runner.database.ids()
    }
    query = generate_queries(corpus, 1, seed=707)[0]
    result = benchmark(
        video_runner.engine.search, query, 0.25, find_intervals=True
    )
    assert result.stats.query_segments >= 1
