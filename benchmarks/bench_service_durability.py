"""Write-path durability cost — what the WAL's guarantee is priced at.

Not a figure in the paper: durability is serving infrastructure.  The
same insert workload runs three ways:

* no durability — copy-on-write snapshot publishing only (the floor);
* WAL with ``fsync=False`` — the record is written and flushed but not
  forced to stable storage (crash-consistent, not power-loss-durable);
* WAL with ``fsync=True`` — the full guarantee: every acknowledged
  insert survives ``kill -9`` and power failure.

Asserted shape: all three configurations acknowledge every insert and end
at the same corpus size, recovery from the fsynced directory reproduces
every write, and the WAL overhead is reported per insert (fsync cost is
hardware-dependent, so the report, not a threshold, is the product).
"""

import time

from benchmarks.conftest import publish, publish_trajectory, scale_parameters
from repro.bench import BenchResult
from repro.core.database import SequenceDatabase
from repro.datagen.video import generate_video_corpus
from repro.service.engine import QueryEngine
from repro.service.wal import DurabilityConfig


def _seed_database(streams) -> SequenceDatabase:
    database = SequenceDatabase(dimension=3)
    for stream in streams:
        database.add(stream)
    return database


def test_service_durability_cost(benchmark, tmp_path):
    params = scale_parameters()
    n_inserts = max(16, params["n_video"])
    streams = generate_video_corpus(
        n_inserts + 8, length_range=(56, 128), seed=903
    )
    seed, inserts = streams[:8], streams[8:]

    def run(durability: DurabilityConfig | None) -> float:
        with QueryEngine(
            _seed_database(seed), workers=2, durability=durability
        ) as engine:
            t0 = time.perf_counter()
            for ordinal, stream in enumerate(inserts):
                engine.insert(stream, sequence_id=f"w{ordinal}")
            elapsed = time.perf_counter() - t0
            assert len(engine) == len(seed) + len(inserts)
            return elapsed

    plain_seconds = run(None)
    buffered_seconds = run(
        DurabilityConfig(tmp_path / "buffered", fsync=False)
    )
    fsync_dir = tmp_path / "fsynced"
    fsync_seconds = benchmark.pedantic(
        run,
        rounds=1,
        iterations=1,
        args=(DurabilityConfig(fsync_dir, checkpoint_on_close=False),),
    )

    # The guarantee the price buys: a fresh engine recovered purely from
    # the fsynced directory holds every acknowledged insert.
    with QueryEngine(
        None, workers=1, durability=DurabilityConfig(fsync_dir)
    ) as recovered:
        ids = set(recovered.sequence_ids())
        missing = {f"w{i}" for i in range(len(inserts))} - ids
        assert not missing, f"recovery lost acknowledged inserts: {missing}"

    n = len(inserts)
    lines = [
        f"{n} inserts over an 8-sequence seed corpus",
        f"no durability       : {plain_seconds / n * 1e3:8.2f} ms/insert",
        f"WAL, fsync off      : {buffered_seconds / n * 1e3:8.2f} ms/insert",
        f"WAL, fsync on       : {fsync_seconds / n * 1e3:8.2f} ms/insert",
        f"fsync premium       : {(fsync_seconds - plain_seconds) / n * 1e3:8.2f}"
        " ms/insert",
    ]
    publish("service_durability", "\n".join(lines))
    publish_trajectory(
        "service_durability",
        [
            BenchResult(
                suite="service_durability",
                scenario="no_durability",
                metrics={"insert_ms": plain_seconds / n * 1e3},
                meta={"inserts": n},
            ),
            BenchResult(
                suite="service_durability",
                scenario="wal_buffered",
                metrics={"insert_ms": buffered_seconds / n * 1e3},
                meta={"inserts": n, "fsync": False},
            ),
            BenchResult(
                suite="service_durability",
                scenario="wal_fsync",
                metrics={
                    "insert_ms": fsync_seconds / n * 1e3,
                    "fsync_premium_ms": max(
                        0.0, (fsync_seconds - plain_seconds) / n * 1e3
                    ),
                },
                meta={"inserts": n, "fsync": True},
            ),
        ],
    )
