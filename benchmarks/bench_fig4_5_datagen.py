"""Figures 4 and 5 — sample synthetic and video sequences.

The paper shows one fractal trail (Figure 4) and one video trail
(Figure 5) in the unit cube, and argues from their shapes that "video
streams are well clustered [compared to] synthetic data sets".  This module
regenerates both samples (dumped as CSV for plotting), quantifies the
clustering claim — the mean inter-frame jump of the video trail must be
well below the fractal trail's — and benchmarks single-sequence generation.
"""

import numpy as np

from benchmarks.conftest import RESULTS_DIR, publish
from repro.core.partitioning import partition_sequence
from repro.datagen.fractal import generate_fractal_sequence
from repro.datagen.video import generate_video_sequence


def _mean_segment_diagonal(sequence) -> float:
    """Average MBR diagonal of the sequence's MCOST partition — small
    diagonals mean tightly clustered runs of points."""
    partition = partition_sequence(sequence)
    return float(
        np.mean([np.linalg.norm(s.mbr.sides) for s in partition])
    )


def _dump_csv(name: str, sequence) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    header = ",".join(f"f{i}" for i in range(sequence.dimension))
    np.savetxt(
        RESULTS_DIR / f"{name}.csv",
        sequence.points,
        delimiter=",",
        header=header,
        comments="",
    )


def test_fig4_5_sample_sequences(benchmark):
    fractal = generate_fractal_sequence(256, 3, seed=41, sequence_id="fig4")
    video = generate_video_sequence(256, seed=51, sequence_id="fig5")
    _dump_csv("fig4_synthetic_sample", fractal)
    _dump_csv("fig5_video_sample", video)

    fractal_diag = benchmark.pedantic(
        _mean_segment_diagonal, rounds=1, iterations=1, args=(fractal,)
    )
    video_diag = _mean_segment_diagonal(video)
    publish(
        "fig4_5_samples",
        "sample trails dumped to fig4_synthetic_sample.csv / "
        "fig5_video_sample.csv\n"
        f"mean partition-MBR diagonal: synthetic {fractal_diag:.4f}, "
        f"video {video_diag:.4f}\n"
        "(paper: video streams are visibly better clustered than the "
        "synthetic trails — smaller MBRs per segment)",
    )
    # The clustering claim the paper reads off the two figures:
    assert video_diag < fractal_diag


def test_fig4_generation_benchmark(benchmark):
    sequence = benchmark(generate_fractal_sequence, 512, 3, seed=42)
    assert len(sequence) == 512


def test_fig5_generation_benchmark(benchmark):
    sequence = benchmark(generate_video_sequence, 512, seed=52)
    assert len(sequence) == 512
