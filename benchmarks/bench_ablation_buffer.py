"""Ablation — disk-era behaviour: buffer pool I/O and the MCOST cost model.

The paper's MCOST cost function (§3.4.3) estimates an MBR's *disk access*
count as ``prod_k (L_k + Q_k + eps)`` — the probability that a query
rectangle expanded by the threshold intersects it in the unit space.  Two
measurements ground that 2000-era model in this repo's simulated substrate:

* **Buffer sweep** — physical reads of a probe batch under LRU pools of
  increasing size (the inclusion property is asserted: more buffer, never
  more misses).
* **Cost-model validation** — per-segment MCOST access estimates against
  measured hit frequencies over random probes; the model must correlate
  positively with reality, which is what justifies partitioning on it.
"""

import numpy as np

from benchmarks.conftest import publish
from repro.analysis.report import format_table
from repro.core.database import SequenceDatabase
from repro.core.mbr import MBR
from repro.core.partitioning import marginal_cost
from repro.datagen.video import generate_video_corpus
from repro.index.paging import PageStore, attach_page_store, detach_page_store

QUERY_SIDE = 0.15
EPSILON = 0.15
PROBES = 200


def _database():
    corpus = generate_video_corpus(120, length_range=(56, 256), seed=303)
    database = SequenceDatabase(dimension=3)
    for stream in corpus:
        database.add(stream)
    return database


def _probe_boxes(rng, count):
    lows = rng.random((count, 3)) * (1.0 - QUERY_SIDE)
    return [MBR(low, low + QUERY_SIDE) for low in lows]


def test_ablation_buffer_pool(benchmark):
    database = benchmark.pedantic(_database, rounds=1, iterations=1)
    index = database.index
    rng = np.random.default_rng(304)
    probes = _probe_boxes(rng, PROBES)

    rows = []
    previous_misses = None
    for pages in (4, 16, 64, 256, 4096):
        store = PageStore(buffer_pages=pages)
        attach_page_store(index, store)
        for probe in probes:
            index.search_within(probe, EPSILON)
        detach_page_store(index)
        rows.append(
            [
                pages,
                store.stats.logical_reads,
                store.stats.physical_reads,
                store.stats.hit_rate,
            ]
        )
        if previous_misses is not None:
            assert store.stats.physical_reads <= previous_misses
        previous_misses = store.stats.physical_reads

    publish(
        "ablation_buffer_pool",
        format_table(
            ["buffer_pages", "logical", "physical", "hit_rate"], rows
        )
        + "\n(LRU inclusion: larger pools never miss more)",
    )


def test_mcost_model_predicts_access_frequency(benchmark):
    """The partitioning cost model vs measured reality."""
    database = benchmark.pedantic(_database, rounds=1, iterations=1)
    index = database.index
    rng = np.random.default_rng(305)
    probes = _probe_boxes(rng, PROBES)

    # Measured: how often each segment MBR is returned by a probe.
    hits: dict = {}
    for probe in probes:
        for entry in index.search_within(probe, EPSILON):
            key = (entry.payload.sequence_id, entry.payload.segment_index)
            hits[key] = hits.get(key, 0) + 1

    predicted = []
    measured = []
    for sequence_id, partition in database.partitions():
        for segment in partition:
            # MCOST's DA term with the probe's actual Q_k + eps.
            estimate = marginal_cost(
                segment.mbr.sides, 1, QUERY_SIDE + EPSILON
            )
            predicted.append(min(1.0, estimate))
            measured.append(
                hits.get((sequence_id, segment.index), 0) / PROBES
            )
    predicted = np.array(predicted)
    measured = np.array(measured)

    correlation = float(np.corrcoef(predicted, measured)[0, 1])
    ratio = float(measured.mean() / predicted.mean())

    # Robust monotonicity check: bucket segments into quintiles of the
    # predicted access probability; measured frequency must rise from the
    # bottom to the top bucket.  (Plain correlation is diluted because the
    # uniform-space model knows the MBR's *size* but not its *location*,
    # and clustered corpora make location matter — which is worth seeing.)
    order = np.argsort(predicted)
    buckets = np.array_split(measured[order], 5)
    bucket_means = [float(b.mean()) for b in buckets]

    publish(
        "ablation_mcost_model",
        f"segments={predicted.size}  predicted access prob mean="
        f"{predicted.mean():.3f}  measured={measured.mean():.3f}  "
        f"(ratio {ratio:.2f})  correlation={correlation:.3f}\n"
        f"measured frequency by predicted-cost quintile: "
        + ", ".join(f"{m:.3f}" for m in bucket_means)
        + "\n(the MCOST intersection-probability model must rank segments "
        "correctly for the greedy partitioning to optimise the right thing; "
        "absolute levels drift because the uniform-space model ignores "
        "data clustering)",
    )
    assert correlation > 0.0
    assert bucket_means[-1] > bucket_means[0]
    # Same order of magnitude overall.
    assert 0.1 < ratio < 10.0
