"""Ablation — R-tree variants behind the Phase-2 probe.

The paper allows "the R-tree or its variants" for index construction.  This
bench compares the three implementations shipped here — Guttman R-tree,
R*-tree and STR bulk loading — on build time and on the node accesses a
Phase-2 probe costs, using identical corpora and probes.
"""

import time

from benchmarks.conftest import publish
from repro.analysis.report import format_table
from repro.core.database import SequenceDatabase
from repro.core.partitioning import partition_sequence
from repro.datagen.queries import generate_queries
from repro.datagen.video import generate_video_corpus

KINDS = ("rtree", "rstar", "str")
EPSILON = 0.1


def _build(kind, corpus):
    database = SequenceDatabase(dimension=3, index_kind=kind)
    started = time.perf_counter()
    for sequence in corpus:
        database.add(sequence)
    database.index  # force lazy STR packing inside the timed region
    return database, time.perf_counter() - started


def test_ablation_index_variants(benchmark):
    corpus = benchmark.pedantic(
        generate_video_corpus,
        rounds=1,
        iterations=1,
        args=(150,),
        kwargs=dict(length_range=(56, 256), seed=88),
    )
    queries = generate_queries(corpus, 10, seed=99)

    rows = []
    accesses_by_kind = {}
    for kind in KINDS:
        database, build_seconds = _build(kind, corpus)
        index = database.index
        index.stats.reset_query_counters()
        hits = 0
        for query in queries:
            for segment in partition_sequence(query):
                hits += len(index.search_within(segment.mbr, EPSILON))
        accesses_by_kind[kind] = index.stats.node_accesses
        rows.append(
            [kind, build_seconds, index.height, index.stats.node_accesses, hits]
        )

    publish(
        "ablation_index_variants",
        format_table(
            ["variant", "build_s", "height", "node_accesses", "entry_hits"],
            rows,
        ),
    )

    # All variants must return identical hit counts (same entries, same
    # probe) — the hits column is the 5th field of each row.
    assert len({row[4] for row in rows}) == 1
    # The packed tree should not be taller than the dynamic ones.
    heights = {row[0]: row[2] for row in rows}
    assert heights["str"] <= max(heights["rtree"], heights["rstar"])


def test_index_build_benchmark(benchmark):
    corpus = generate_video_corpus(60, length_range=(56, 128), seed=101)

    def build():
        database = SequenceDatabase(dimension=3, index_kind="rtree")
        for sequence in corpus:
            database.add(sequence)
        return database

    database = benchmark(build)
    assert len(database) == 60


def test_str_bulk_build_benchmark(benchmark):
    corpus = generate_video_corpus(60, length_range=(56, 128), seed=101)

    def build():
        database = SequenceDatabase(dimension=3, index_kind="str")
        for sequence in corpus:
            database.add(sequence)
        return database.index

    index = benchmark(build)
    assert len(index) > 0
