"""Ablation — query-workload sensitivity: length and noise.

The paper fixes its query workload ("randomly selected 20 queries") without
reporting its length distribution or perturbation level, yet both shape the
results: longer queries are more selective (fewer relevant sequences) and
average away noise; noisier queries push the relevant set away from the
exact-subsequence regime.  This bench sweeps both knobs at a fixed
threshold so the sensitivity is on record next to the reproduction's
choices (lengths 32-128, noise 0.01).
"""

from benchmarks.conftest import publish
from repro.analysis.experiment import ExperimentConfig, ExperimentRunner
from repro.analysis.report import format_table
from repro.datagen.fractal import generate_fractal_corpus

EPSILON = 0.15


def _corpus():
    return generate_fractal_corpus(150, length_range=(56, 256), seed=505)


def test_ablation_query_length(benchmark):
    corpus = benchmark.pedantic(_corpus, rounds=1, iterations=1)
    rows = []
    for length in (8, 32, 128):
        config = ExperimentConfig.smoke_synthetic(
            n_sequences=len(corpus),
            queries_per_threshold=5,
            thresholds=(EPSILON,),
            query_length_range=(length, length),
        )
        runner = ExperimentRunner(config, corpus=corpus)
        row = runner.run()[0]
        rows.append(
            [
                length,
                row.mean_relevant,
                row.pr_dnorm,
                row.si_recall,
                row.response_ratio,
            ]
        )
    publish(
        "ablation_query_length",
        format_table(
            ["query_len", "mean_relevant", "PR_dnorm", "SI_recall", "ratio"],
            rows,
        )
        + "\n(longer queries are more selective: fewer relevant sequences)",
    )
    relevants = [row[1] for row in rows]
    assert relevants[0] >= relevants[-1], (
        "short queries must match at least as many sequences as long ones"
    )
    for row in rows:
        assert row[3] >= 0.9  # recall stays high at every length


def test_ablation_query_noise(benchmark):
    corpus = benchmark.pedantic(_corpus, rounds=1, iterations=1)
    rows = []
    for noise in (0.0, 0.01, 0.05, 0.15):
        config = ExperimentConfig.smoke_synthetic(
            n_sequences=len(corpus),
            queries_per_threshold=5,
            thresholds=(EPSILON,),
            query_noise=noise,
        )
        runner = ExperimentRunner(config, corpus=corpus)
        row = runner.run()[0]
        rows.append(
            [
                noise,
                row.mean_relevant,
                row.pr_dnorm,
                row.si_recall,
                row.answer_recall,
            ]
        )
    publish(
        "ablation_query_noise",
        format_table(
            ["noise", "mean_relevant", "PR_dnorm", "SI_recall", "answer_recall"],
            rows,
        )
        + "\n(no false dismissals at any noise level — the guarantee is "
        "threshold-relative, not workload-relative)",
    )
    for row in rows:
        assert row[4] == 1.0  # answer recall: exact at every noise level
    # Heavy noise pushes queries away from their sources: fewer relevant.
    assert rows[-1][1] <= rows[0][1] + 1e-9
