"""Figure 6 — pruning rates of Dmbr and Dnorm on the synthetic corpus.

Paper's series: over thresholds 0.05-0.50, the ``Dmbr`` pruning rate runs
70-90% and ``Dnorm`` a constant 3-10 points higher (76-93%), both falling
as the threshold grows.  Shape requirements asserted here:

* pruning decreases (weakly) from the smallest to the largest threshold;
* ``Dnorm`` never prunes less than ``Dmbr`` (Lemma 3's tighter bound);
* no false dismissals at any threshold (aggregate answer recall is 1).

The benchmarked operation is one full three-phase search at the paper's
mid threshold.
"""

from benchmarks.conftest import publish
from repro.analysis.report import figure_table
from repro.datagen.queries import generate_queries


def test_fig6_pruning_series(benchmark, synthetic_rows):
    table = benchmark.pedantic(
        figure_table, rounds=1, iterations=1, args=("fig6", synthetic_rows)
    )
    publish("fig6_pruning_synthetic", table)

    for row in synthetic_rows:
        assert row.answer_recall == 1.0, "false dismissal detected"
        assert row.pr_dnorm >= row.pr_dmbr - 1e-12
        assert 0.0 <= row.pr_dmbr <= 1.0

    first, last = synthetic_rows[0], synthetic_rows[-1]
    assert first.epsilon < last.epsilon
    assert first.pr_dmbr > last.pr_dmbr, (
        "pruning must fall as the threshold grows"
    )


def test_fig6_search_benchmark(benchmark, synthetic_runner):
    corpus = {
        sid: synthetic_runner.database.sequence(sid)
        for sid in synthetic_runner.database.ids()
    }
    query = generate_queries(corpus, 1, seed=606)[0]
    result = benchmark(
        synthetic_runner.engine.search, query, 0.25, find_intervals=True
    )
    assert result.stats.query_segments >= 1
