"""Ablation — key-frame search versus the paper's method.

Section 1 motivates the whole paper with: "the search by a key frame does
not guarantee the correctness since it cannot always summarize all the
frames of a shot."  This bench quantifies that: over a video corpus and a
query batch, the key-frame baseline's recall against the exact scan is
compared with the three-phase search's (always 1.0 by Lemmas 1-3).
"""

from benchmarks.conftest import publish
from repro.analysis.metrics import recall
from repro.analysis.report import format_table
from repro.baselines.keyframe import KeyFrameSearch
from repro.datagen.queries import generate_queries

EPSILONS = (0.05, 0.10, 0.20)


def test_ablation_keyframe_recall(benchmark, video_runner):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    corpus = {
        sid: video_runner.database.sequence(sid)
        for sid in video_runner.database.ids()
    }
    keyframe = KeyFrameSearch()
    for sequence_id, sequence in corpus.items():
        keyframe.add(sequence, sequence_id)

    queries = generate_queries(corpus, 8, seed=555, noise=0.02)

    rows = []
    keyframe_ever_missed = False
    for epsilon in EPSILONS:
        method_recalls = []
        keyframe_recalls = []
        for query in queries:
            relevant = video_runner.scanner.scan(
                query, epsilon, find_intervals=False
            ).answers
            method = set(
                video_runner.engine.search(
                    query, epsilon, find_intervals=False
                ).answers
            )
            keyed = keyframe.search(query, epsilon)
            method_recalls.append(recall(method, relevant))
            keyframe_recalls.append(recall(keyed, relevant))
            if relevant - keyed:
                keyframe_ever_missed = True
        rows.append(
            [
                epsilon,
                sum(method_recalls) / len(method_recalls),
                sum(keyframe_recalls) / len(keyframe_recalls),
            ]
        )

    publish(
        "ablation_keyframe",
        format_table(
            ["epsilon", "method_recall", "keyframe_recall"], rows
        )
        + "\n(paper §1: key-frame search does not guarantee correctness; "
        "the proposed method does)",
    )

    for _, method_recall, _ in rows:
        assert method_recall == 1.0
    assert keyframe_ever_missed, (
        "expected the key-frame baseline to miss at least one true answer"
    )


def test_keyframe_search_benchmark(benchmark, video_runner):
    corpus = {
        sid: video_runner.database.sequence(sid)
        for sid in video_runner.database.ids()
    }
    keyframe = KeyFrameSearch()
    for sequence_id, sequence in corpus.items():
        keyframe.add(sequence, sequence_id)
    query = generate_queries(corpus, 1, seed=556)[0]
    benchmark(keyframe.search, query, 0.1)
