"""Figure 8 — solution-interval pruning and recall, synthetic corpus.

Paper's series: the estimated solution interval prunes 60-80% of the
prunable points while keeping recall at 98-100% ("almost no false
dismissal", §4.2.2).  Asserted here: recall stays above the paper's 0.98
floor at every threshold and the interval actually prunes points.

The benchmarked operation is solution-interval assembly (a search with
``find_intervals=True``) against the plain candidate search, at the mid
threshold.
"""

from benchmarks.conftest import publish
from repro.analysis.report import figure_table
from repro.datagen.queries import generate_queries


def test_fig8_solution_interval_series(benchmark, synthetic_rows):
    table = benchmark.pedantic(
        figure_table, rounds=1, iterations=1, args=("fig8", synthetic_rows)
    )
    publish("fig8_si_synthetic", table)

    for row in synthetic_rows:
        assert row.si_recall >= 0.95, (
            f"recall {row.si_recall:.3f} at eps={row.epsilon} breaches the "
            f"paper's almost-no-false-dismissal band"
        )
        assert row.si_pruning > 0.0, "the interval must prune something"


def test_fig8_recall_band(benchmark, synthetic_rows):
    """Averaged over the sweep the paper reports 98-100% recall."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    mean_recall = sum(r.si_recall for r in synthetic_rows) / len(synthetic_rows)
    assert mean_recall >= 0.97


def test_fig8_interval_assembly_benchmark(benchmark, synthetic_runner):
    corpus = {
        sid: synthetic_runner.database.sequence(sid)
        for sid in synthetic_runner.database.ids()
    }
    query = generate_queries(corpus, 1, seed=808)[0]
    result = benchmark(
        synthetic_runner.engine.search, query, 0.25, find_intervals=True
    )
    assert result.solution_intervals is not None
