"""Ablation — which dimensionality reduction filters best? (§3.4.1)

The paper names "DFT or Wavelets" for reducing high-dimensional features;
PCA is the data-driven third option this repo adds.  All three are
orthonormal-truncation reductions, so each *lower-bounds* the true distance
— correctness is identical — and the only question is **tightness**: the
closer the reduced distance sits to the true distance, the fewer false
candidates survive the filter.

Measured on colour-histogram features (24-d) of rendered raw frames, at
several output dimensionalities: the mean ratio ``reduced / true`` over
random vector pairs (1.0 = perfect).  PCA, fitted to the data, should be
the tightest; the assertion requires it to beat the data-agnostic DFT at
equal output dimension.
"""

import numpy as np

from benchmarks.conftest import publish
from repro.analysis.report import format_table
from repro.datagen.frames import generate_frame_clip
from repro.features.extraction import color_histogram_sequence
from repro.features.reduction import dft_reduce, fit_pca, haar_reduce

OUTPUT_DIMS = (2, 4, 8)
PAIRS = 400


def _feature_corpus():
    vectors = []
    for i in range(12):
        clip = generate_frame_clip(50, seed=600 + i)
        vectors.append(color_histogram_sequence(clip, bins=8).points)
    return np.vstack(vectors)


def _tightness(reduced: np.ndarray, original: np.ndarray, rng) -> float:
    lhs = rng.integers(0, original.shape[0], PAIRS)
    rhs = rng.integers(0, original.shape[0], PAIRS)
    keep = lhs != rhs
    lhs, rhs = lhs[keep], rhs[keep]
    true = np.linalg.norm(original[lhs] - original[rhs], axis=1)
    approx = np.linalg.norm(reduced[lhs] - reduced[rhs], axis=1)
    positive = true > 1e-12
    return float(np.mean(approx[positive] / true[positive]))


def test_ablation_reduction_tightness(benchmark):
    features = benchmark.pedantic(_feature_corpus, rounds=1, iterations=1)
    rng = np.random.default_rng(601)

    rows = []
    tightness = {}
    for out_dim in OUTPUT_DIMS:
        # DFT outputs 2 coefficients per complex value; use k = out_dim / 2
        # so every method is compared at the same output dimensionality.
        dft = dft_reduce(features, max(1, out_dim // 2))
        haar = haar_reduce(features, out_dim)
        pca_space = fit_pca(features, out_dim)
        pca = pca_space.transform(features)
        row = [out_dim]
        for name, reduced in (("dft", dft), ("haar", haar), ("pca", pca)):
            value = _tightness(reduced, features, rng)
            tightness[(name, out_dim)] = value
            row.append(value)
        rows.append(row)

    publish(
        "ablation_reduction",
        format_table(["out_dim", "dft", "haar", "pca"], rows)
        + "\n(mean reduced/true distance ratio over random feature pairs; "
        "1.0 = lossless.  All three lower-bound, so higher = tighter "
        "filtering at equal correctness.  DFT/Haar score ~0 at low "
        "dimensions because histograms have constant sums: the leading "
        "DC-like coefficients are identical across all vectors and carry "
        "no discrimination — the classic argument for data-driven "
        "reductions on normalised features)",
    )

    for _, dft_value, haar_value, pca_value in rows:
        for value in (dft_value, haar_value, pca_value):
            assert 0.0 <= value <= 1.0 + 1e-9  # lower bound, always
    # Data-driven PCA must beat the data-agnostic DFT at every dimension.
    for out_dim in OUTPUT_DIMS:
        assert tightness[("pca", out_dim)] >= tightness[("dft", out_dim)]
    # More dimensions, tighter bound (monotone in k for each method).
    for name in ("dft", "haar", "pca"):
        values = [tightness[(name, d)] for d in OUTPUT_DIMS]
        assert values == sorted(values)
