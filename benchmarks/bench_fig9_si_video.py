"""Figure 9 — solution-interval pruning and recall, video corpus.

Paper's series: PR_SI 67-94% with recall ~1.0; video prunes better than
synthetic "since video streams are well clustered" — frames of one shot
share feature values, so the Dnorm windows hug the true answer intervals.
"""

from benchmarks.conftest import publish
from repro.analysis.report import figure_table
from repro.datagen.queries import generate_queries


def test_fig9_solution_interval_series(benchmark, video_rows):
    table = benchmark.pedantic(
        figure_table, rounds=1, iterations=1, args=("fig9", video_rows)
    )
    publish("fig9_si_video", table)

    for row in video_rows:
        assert row.si_recall >= 0.95
        assert row.si_pruning > 0.0


def test_fig9_recall_band(benchmark, video_rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    mean_recall = sum(r.si_recall for r in video_rows) / len(video_rows)
    assert mean_recall >= 0.97


def test_fig9_video_si_vs_synthetic(benchmark, video_rows, synthetic_rows):
    """The paper's cross-corpus observation: averaged over the sweep, the
    video corpus's solution intervals prune at least about as well as the
    synthetic corpus's."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    video_mean = sum(r.si_pruning for r in video_rows) / len(video_rows)
    synthetic_mean = sum(r.si_pruning for r in synthetic_rows) / len(
        synthetic_rows
    )
    assert video_mean >= synthetic_mean - 0.1


def test_fig9_interval_assembly_benchmark(benchmark, video_runner):
    corpus = {
        sid: video_runner.database.sequence(sid)
        for sid in video_runner.database.ids()
    }
    query = generate_queries(corpus, 1, seed=909)[0]
    result = benchmark(
        video_runner.engine.search, query, 0.25, find_intervals=True
    )
    assert result.solution_intervals is not None
