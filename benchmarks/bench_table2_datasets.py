"""Table 2 — the experimental parameter grid and both corpora.

Regenerates Table 2's two dataset columns (synthetic and real video) at the
selected scale, verifies the structural parameters the table reports
(sequence counts, arbitrary lengths in 56-512, 3-d points, threshold range,
queries per threshold) and benchmarks corpus generation.
"""

import numpy as np

from benchmarks.conftest import publish, scale_parameters
from repro.analysis.report import format_table
from repro.datagen.fractal import generate_fractal_corpus
from repro.datagen.video import generate_video_corpus


def _summarise(name, corpus, params):
    lengths = [len(s) for s in corpus]
    return [
        name,
        len(corpus),
        f"{min(lengths)}-{max(lengths)}",
        corpus[0].dimension,
        f"{params['thresholds'][0]:.2f}-{params['thresholds'][-1]:.2f}",
        params["queries_per_threshold"],
    ]


def test_table2_parameters(benchmark, synthetic_runner, video_runner):
    params = scale_parameters()
    synthetic = synthetic_runner.corpus
    video = video_runner.corpus

    rows = [
        _summarise("synthetic", synthetic, params),
        _summarise("video", video, params),
    ]
    table = benchmark.pedantic(
        format_table, rounds=1, iterations=1, args=(
            ["dataset", "#sequences", "lengths", "dim", "epsilon range", "#queries/eps"],
            rows,
        ),
    )
    paper = (
        "paper: 1600 synthetic / 1408 video sequences, lengths 56-512, "
        "3-d, eps 0.05-0.50, 20 queries per eps"
    )
    publish("table2_datasets", f"{table}\n({paper})")

    for corpus, expected_count in (
        (synthetic, params["n_synthetic"]),
        (video, params["n_video"]),
    ):
        assert len(corpus) == expected_count
        lengths = np.array([len(s) for s in corpus])
        assert lengths.min() >= 56
        assert lengths.max() <= 512
        assert len(np.unique(lengths)) > 1  # "arbitrary" lengths
        assert all(s.dimension == 3 for s in corpus)
        for sequence in corpus[:25]:
            assert sequence.points.min() >= 0.0
            assert sequence.points.max() <= 1.0


def test_generate_synthetic_corpus_benchmark(benchmark):
    corpus = benchmark.pedantic(
        generate_fractal_corpus,
        args=(64,),
        kwargs=dict(seed=11),
        rounds=3,
        iterations=1,
    )
    assert len(corpus) == 64


def test_generate_video_corpus_benchmark(benchmark):
    corpus = benchmark.pedantic(
        generate_video_corpus,
        args=(64,),
        kwargs=dict(seed=11),
        rounds=3,
        iterations=1,
    )
    assert len(corpus) == 64
