"""The paper's "long query" case: a query longer than the data sequences.

Section 1: "It is also allowed that a given query sequence may be longer
than a data sequence.  In this case, a query is processed to find data
sequences to which the subsequences of the given query sequence are
similar."  Concretely: given a long recording, find the archived clips that
appear somewhere inside it.

This example builds an archive of short clips, splices three of them into a
long "broadcast" recording (with filler between), and uses the recording as
the query.  The spliced clips must be found with zero false dismissals —
the direction-dependent ``Dnorm`` handling this exercises is exactly the
soundness subtlety documented in
``repro.core.distance.min_normalized_distance``.

Run with::

    python examples/long_query_search.py
"""

import numpy as np

from repro import SequenceDatabase, SimilaritySearch
from repro.baselines import exact_range_search
from repro.datagen import generate_video_corpus, generate_video_sequence

EPSILON = 0.05


def main() -> None:
    archive = generate_video_corpus(150, length_range=(56, 96), seed=81)
    database = SequenceDatabase(dimension=3)
    for clip in archive:
        database.add(clip)
    engine = SimilaritySearch(database)

    # Splice three archived clips into a long recording, separated by
    # fresh filler footage, and add light noise (re-encoding).
    rng = np.random.default_rng(82)
    spliced_ids = ["video-12", "video-77", "video-140"]
    pieces = []
    for ordinal, clip_id in enumerate(spliced_ids):
        filler = generate_video_sequence(120, seed=900 + ordinal)
        pieces.append(filler.points)
        pieces.append(database.sequence(clip_id).points)
    recording = np.clip(
        np.vstack(pieces) + rng.normal(0, 0.005, (sum(len(p) for p in pieces), 3)),
        0,
        1,
    )
    print(
        f"recording: {recording.shape[0]} frames; archive clips are "
        f"56-96 frames each (query is ~10x longer than any data sequence)\n"
    )

    result = engine.search(recording, EPSILON, find_intervals=True)
    relevant = exact_range_search(
        recording,
        {sid: database.sequence(sid) for sid in database.ids()},
        EPSILON,
    )

    print(f"method answers : {sorted(result.answers, key=str)}")
    print(f"exact answers  : {sorted(relevant, key=str)}")
    print(f"false dismissals: {len(relevant - set(result.answers))}\n")
    assert relevant <= set(result.answers)
    for clip_id in spliced_ids:
        assert clip_id in result.answers, f"spliced clip {clip_id} missed"

    print("matched portions of each answer clip (solution intervals):")
    for clip_id in spliced_ids:
        interval = result.solution_intervals[clip_id]
        clip_length = len(database.sequence(clip_id))
        print(
            f"  {clip_id!r}: {len(interval)}/{clip_length} frames flagged "
            f"({interval.coverage(clip_length):.0%})"
        )

    stats = result.stats
    print(
        f"\nwork: {stats.query_segments} query MBRs, "
        f"{stats.candidates_after_dmbr} candidates, "
        f"{stats.answers_after_dnorm} answers, "
        f"{stats.total_seconds * 1000:.0f} ms"
    )


if __name__ == "__main__":
    main()
