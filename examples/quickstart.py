"""Quickstart: index a corpus of multidimensional sequences and search it.

Covers the whole public API in one page:

1. build a :class:`~repro.SequenceDatabase` (partitioning + R-tree index);
2. run the three-phase range search of the paper for one query;
3. read the answers, the approximate solution intervals and the search
   statistics;
4. run the k-nearest-sequences extension.

Run with::

    python examples/quickstart.py
"""

from repro import SequenceDatabase, SimilaritySearch
from repro.datagen import generate_queries, generate_video_corpus


def main() -> None:
    # 1. A corpus of 200 simulated video streams (3-d colour features).
    corpus = generate_video_corpus(200, length_range=(56, 256), seed=7)
    database = SequenceDatabase(dimension=3)
    for stream in corpus:
        database.add(stream)  # ids come from the sequences themselves
    print(f"indexed {len(database)} sequences "
          f"({database.point_count} points, "
          f"{database.segment_count} MBRs, "
          f"R-tree height {database.index.height})")

    # 2. A query: a perturbed scene cut from one of the streams.
    workload = generate_queries(
        {sid: database.sequence(sid) for sid in database.ids()},
        count=1,
        length_range=(40, 80),
        noise=0.01,
        seed=13,
    )
    query = workload[0]
    source_id, start, length = workload.sources[0]
    print(f"\nquery: {length} frames cut from {source_id!r} at offset {start}")

    # 3. Range search with threshold 0.1 in the unit cube.
    engine = SimilaritySearch(database)
    result = engine.search(query, epsilon=0.1)
    print(f"\nepsilon=0.1:"
          f"\n  Phase 2 (Dmbr) kept {len(result.candidates)} candidates"
          f"\n  Phase 3 (Dnorm) kept {len(result.answers)} answers")
    for sequence_id in result.answers[:5]:
        interval = result.solution_intervals[sequence_id]
        spans = ", ".join(f"[{a}:{b})" for a, b in interval.intervals[:4])
        print(f"  {sequence_id!r}: play frames {spans}"
              + (" ..." if len(interval.intervals) > 4 else ""))
    stats = result.stats
    print(f"  ({stats.query_segments} query MBRs, "
          f"{stats.node_accesses} index node accesses, "
          f"{stats.total_seconds * 1000:.1f} ms)")

    # 4. The k-NN extension: the five most similar streams, exactly.
    print("\n5 nearest streams (exact sliding distance):")
    for distance, sequence_id in engine.knn(query, k=5):
        print(f"  {sequence_id!r}: D = {distance:.4f}")


if __name__ == "__main__":
    main()
