"""Image retrieval via region sequences on a Hilbert curve.

The paper's second data-model example (§1): an image is segmented into
regions, the regions are ordered along a space-filling curve, and the
resulting sequence of region-feature vectors is searched like any other
multidimensional sequence — "Find all images in a database that contain
regions similar to regions of a given image."

This example also shows the *filter-and-refine* pattern explicitly.  The
three-phase search is a lower-bound filter: it guarantees no false
dismissals but admits false hits, and smooth gradient images have large
MBRs, so the filter is deliberately stressed here.  The exact sliding
distance then refines the surviving candidates — far fewer exact
computations than scanning the whole corpus.

Run with::

    python examples/image_region_search.py
"""

import numpy as np

from repro import (
    MultidimensionalSequence,
    SequenceDatabase,
    SimilaritySearch,
    sequence_distance,
)
from repro.datagen import generate_image_corpus

ORDER = 4  # 16x16 regions, 256-element sequences
EPSILON = 0.05


def main() -> None:
    corpus = {
        sequence.sequence_id: sequence
        for sequence in generate_image_corpus(80, order=ORDER, seed=61)
    }

    # Plant near-duplicates of image-17: a noisy copy and a tinted copy.
    rng = np.random.default_rng(62)
    target = corpus["image-17"]
    corpus["image-dup"] = MultidimensionalSequence(
        np.clip(target.points + rng.normal(0, 0.01, target.points.shape), 0, 1),
        sequence_id="image-dup",
    )
    corpus["image-tinted"] = MultidimensionalSequence(
        np.clip(target.points * 0.96 + 0.02, 0, 1), sequence_id="image-tinted"
    )

    database = SequenceDatabase(dimension=3)
    for image in corpus.values():
        database.add(image)
    engine = SimilaritySearch(database)

    # ------------------------------------------------------------------
    # Whole-image query, filter-and-refine.
    # ------------------------------------------------------------------
    result = engine.search(target, EPSILON, find_intervals=False)
    verified = sorted(
        sequence_id
        for sequence_id in result.answers
        if sequence_distance(target, corpus[sequence_id]) <= EPSILON
    )
    print(f"whole-image query (eps={EPSILON}):")
    print(
        f"  filter: {len(database)} images -> "
        f"{len(result.candidates)} candidates (Dmbr) -> "
        f"{len(result.answers)} (Dnorm)"
    )
    print(f"  refine: exact matches = {verified}\n")
    assert set(verified) == {"image-17", "image-dup", "image-tinted"}

    # ------------------------------------------------------------------
    # Region-run query: a quarter of the target's Hilbert sequence.
    # "Images that contain regions similar to these regions" — the
    # solution intervals localise the matching region runs.
    # ------------------------------------------------------------------
    run = MultidimensionalSequence(
        target.points[64:128], sequence_id="query-run"
    )
    region_result = engine.search(run, EPSILON)
    refined = [
        sequence_id
        for sequence_id in region_result.answers
        if sequence_distance(run, corpus[sequence_id]) <= EPSILON
    ]
    print(f"region-run query (64 regions, eps={EPSILON}):")
    print(
        f"  filter kept {len(region_result.answers)} images, "
        f"refine kept {len(refined)}"
    )
    for sequence_id in sorted(refined, key=str):
        interval = region_result.solution_intervals[sequence_id]
        spans = ", ".join(f"{a}-{b}" for a, b in interval.intervals[:4])
        print(f"  {sequence_id!r}: matching region runs {spans}")
    assert "image-17" in refined
    assert "image-dup" in refined

    exact_scans_saved = len(database) - len(region_result.answers)
    print(
        f"\nthe filter spared {exact_scans_saved} exact sequence scans "
        f"({exact_scans_saved / len(database):.0%} of the corpus) with "
        f"zero false dismissals"
    )


if __name__ == "__main__":
    main()
