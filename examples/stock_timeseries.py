"""Time series as the one-dimensional special case, plus the baselines.

The paper's Definition 1 makes classic time-series search a special case of
multidimensional sequences (``n = 1``), motivated by queries like
"Identify companies whose stock prices show similar movements during the
last year to that of a given company."  This example:

* generates a market of stock-like price series;
* answers that query three ways and cross-checks the results:

  1. the paper's engine on 1-d sequences (``Dmean`` semantics),
  2. the DFT whole-sequence matcher of Agrawal et al. (equal lengths,
     Euclidean semantics),
  3. the ST-index subsequence matcher of Faloutsos et al. (finds *where*
     the pattern occurs).

Run with::

    python examples/stock_timeseries.py
"""

import numpy as np

from repro import SequenceDatabase, SimilaritySearch
from repro.baselines import DftWholeMatcher, STIndexSubsequenceMatcher
from repro.datagen import generate_stock_series

YEAR = 256  # trading days stored per company
COMPANIES = 120


def main() -> None:
    rng = np.random.default_rng(31)
    market = {
        f"TICK{i:03d}": generate_stock_series(YEAR, seed=rng)
        for i in range(COMPANIES)
    }

    # A target company plus a handful of genuine correlates.
    target = market["TICK007"]
    for clone in ("TICK100", "TICK101", "TICK102"):
        market[clone] = np.clip(
            target + rng.normal(0, 0.015, YEAR), 0.0, 1.0
        )

    # --- 1. the paper's engine, n = 1 --------------------------------
    database = SequenceDatabase(dimension=1)
    for ticker, series in market.items():
        database.add(series.reshape(-1, 1), sequence_id=ticker)
    engine = SimilaritySearch(database)
    result = engine.search(target.reshape(-1, 1), epsilon=0.05)
    similar = sorted(t for t in result.answers if t != "TICK007")
    print("paper engine (Dmean <= 0.05):")
    print(f"  similar movements: {similar}\n")

    # --- 2. DFT whole matching (Agrawal et al.) ----------------------
    # Euclidean threshold equivalent to a mean deviation of ~0.05/day.
    matcher = DftWholeMatcher(YEAR, n_coefficients=4)
    for ticker, series in market.items():
        matcher.add(series, ticker)
    euclidean_eps = 0.05 * np.sqrt(YEAR)
    candidates = matcher.candidates(target, euclidean_eps)
    answers = sorted(t for t in matcher.search(target, euclidean_eps)
                     if t != "TICK007")
    print("DFT F-index (whole matching):")
    print(f"  index pre-filter kept {len(candidates)}/{len(market)}")
    print(f"  exact answers: {answers}\n")

    # --- 3. ST-index subsequence matching (Faloutsos et al.) ---------
    pattern = target[90:130]  # a 40-day movement pattern
    st_index = STIndexSubsequenceMatcher(window=16, n_coefficients=2)
    for ticker, series in market.items():
        st_index.add(series, ticker)
    matches = st_index.search(pattern, epsilon=0.05 * np.sqrt(40))
    print("ST-index (where does this 40-day pattern occur?):")
    for match in matches[:8]:
        print(
            f"  {match.sequence_id} days {match.offset}-"
            f"{match.offset + 40} (distance {match.distance:.3f})"
        )
    if len(matches) > 8:
        print(f"  ... and {len(matches) - 8} more")

    # The clones must be visible to all three methods.
    for clone in ("TICK100", "TICK101", "TICK102"):
        assert clone in result.answers
        assert clone in answers
        assert any(m.sequence_id == clone for m in matches)
    print("\nall three methods agree on the planted correlates ✓")


if __name__ == "__main__":
    main()
