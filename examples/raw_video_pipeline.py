"""The full §3.4.1 pre-processing pipeline, from raw pixels to search.

Every other example starts from feature sequences; this one starts from
*raw material*, exactly as the paper's pre-processing describes:

1. **Parse raw frames** — a synthetic archive of tiny rendered video clips
   (shot-structured images, see ``repro.datagen.frames``).
2. **Extract feature vectors** — per-frame colour histograms (24-d: "a
   frame can be represented by a multidimensional vector ... by averaging
   color values of pixels of a frame or segmented blocks").
3. **Reduce dimensionality** — "When the vector is of high dimension,
   various dimension reduction techniques such as DFT or Wavelets can be
   applied": here PCA to 3-d, with the lower-bounding threshold adjustment
   that keeps the search dismissal-free.
4. **Partition + index + search** — the usual three-phase machinery.

Run with::

    python examples/raw_video_pipeline.py
"""

import numpy as np

from repro import MultidimensionalSequence, SequenceDatabase, SimilaritySearch
from repro.datagen.frames import generate_frame_clip
from repro.features import color_histogram_sequence, fit_pca

ARCHIVE_SIZE = 40
FRAMES_PER_CLIP = 80
EPSILON = 0.05


def main() -> None:
    # 1. Raw material: an archive of rendered clips.
    print(f"rendering {ARCHIVE_SIZE} clips of {FRAMES_PER_CLIP} raw frames "
          f"(16x16 RGB) ...")
    clips = {
        f"clip-{i:02d}": generate_frame_clip(FRAMES_PER_CLIP, seed=700 + i)
        for i in range(ARCHIVE_SIZE)
    }

    # 2. Feature extraction: 8-bin colour histograms per channel -> 24-d.
    histograms = {
        name: color_histogram_sequence(clip, bins=8)
        for name, clip in clips.items()
    }
    dimension = next(iter(histograms.values())).dimension
    print(f"extracted {dimension}-d histogram features per frame")

    # 3. Dimensionality reduction: PCA fitted on the archive, 24-d -> 3-d.
    sample = np.vstack([seq.points for seq in histograms.values()])
    space = fit_pca(sample, 3)
    print(
        f"PCA to {space.output_dimension}-d; dismissal-safe threshold for "
        f"eps={EPSILON}: {space.safe_epsilon(EPSILON):.4f}"
    )

    database = SequenceDatabase(dimension=3)
    for name, seq in histograms.items():
        reduced = space.rescale(space.transform(seq.points))
        database.add(MultidimensionalSequence(reduced, sequence_id=name))
    print(
        f"indexed {len(database)} sequences "
        f"({database.segment_count} MBRs)\n"
    )

    # 4. Query: a 25-frame scene re-rendered from clip-17's frames + noise.
    rng = np.random.default_rng(99)
    raw_scene = np.clip(
        clips["clip-17"][30:55] + rng.normal(0, 0.01, (25, 16, 16, 3)), 0, 1
    )
    query_features = color_histogram_sequence(raw_scene).points
    query = space.rescale(space.transform(query_features))

    engine = SimilaritySearch(database)
    result = engine.search(query, space.safe_epsilon(EPSILON))
    print(f"scene query (25 frames of 'clip-17', +noise):")
    print(f"  candidates after Dmbr : {len(result.candidates)}")
    print(f"  answers after Dnorm   : {len(result.answers)}")
    assert "clip-17" in result.answers
    interval = result.solution_intervals["clip-17"]
    spans = ", ".join(f"{a}-{b}" for a, b in interval.intervals[:4])
    print(f"  'clip-17' matching frames: {spans}")

    best = engine.knn_subsequences(query, 1)[0]
    print(
        f"\nbest scene anywhere: {best.sequence_id!r} frames "
        f"{best.offset}-{best.offset + best.length} "
        f"(reduced-space Dmean {best.distance:.4f})"
    )
    assert best.sequence_id == "clip-17"


if __name__ == "__main__":
    main()
