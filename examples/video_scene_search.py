"""Video scene search: find *which part* of which stream matches a scene.

The paper's flagship scenario (§1): "Select videos in a database which
contain the sub-streams that are similar to a given news video, and play
those sub-streams only."  This example:

* builds a database of simulated TV streams;
* takes a short scene (with noise — think re-encoded footage);
* runs the three-phase search to get answer streams *and* their
  approximate solution intervals — the sub-streams a player would jump to;
* validates the intervals against the exact sequential scan, reporting the
  recall and how much of each stream the viewer is spared.

Run with::

    python examples/video_scene_search.py
"""

from repro import SequenceDatabase, SimilaritySearch
from repro.baselines import SequentialScan
from repro.datagen import VideoConfig, generate_video_corpus

EPSILON = 0.08


def main() -> None:
    config = VideoConfig(theme_spread=0.12)
    corpus = generate_video_corpus(
        300, config, length_range=(120, 400), seed=23
    )
    database = SequenceDatabase(dimension=3)
    for stream in corpus:
        database.add(stream)
    engine = SimilaritySearch(database)
    scanner = SequentialScan.from_database(database)

    # The scene: 60 frames out of a long stream, lightly corrupted.
    import numpy as np

    rng = np.random.default_rng(99)
    source_id = next(
        sid for sid in database.ids() if len(database.sequence(sid)) >= 260
    )
    source = database.sequence(source_id)
    scene = np.clip(
        source.points[150:210] + rng.normal(0, 0.008, (60, 3)), 0, 1
    )
    print(f"scene: frames 150-210 of {source_id!r} (+noise), eps={EPSILON}\n")

    result = engine.search(scene, EPSILON)
    truth = scanner.scan(scene, EPSILON)

    print(f"method answers : {sorted(result.answers)}")
    print(f"exact answers  : {sorted(truth.answers)}")
    missing = truth.answers - set(result.answers)
    print(f"false dismissals: {len(missing)} (guaranteed 0 by Lemmas 1-3)\n")

    print("sub-streams to play (approximate solution intervals):")
    for sequence_id in sorted(result.answers, key=str):
        interval = result.solution_intervals[sequence_id]
        stream_length = len(database.sequence(sequence_id))
        exact = truth.solution_intervals.get(sequence_id)
        spans = ", ".join(f"{a}-{b}" for a, b in interval.intervals[:5])
        skipped = 1.0 - interval.coverage(stream_length)
        line = (
            f"  {sequence_id!r} ({stream_length} frames): frames {spans}"
            f"  -> viewer skips {skipped:.0%} of the stream"
        )
        if exact is not None and len(exact):
            covered = interval.intersection_size(exact) / len(exact)
            line += f", interval recall {covered:.1%}"
        print(line)

    stats = result.stats
    print(
        f"\nwork: {stats.node_accesses} index node accesses, "
        f"{stats.candidates_after_dmbr} candidates after Dmbr, "
        f"{stats.answers_after_dnorm} answers after Dnorm"
    )
    print(
        f"time: method {stats.total_seconds * 1000:.1f} ms vs "
        f"sequential scan {truth.seconds * 1000:.1f} ms "
        f"({truth.seconds / stats.total_seconds:.1f}x)"
    )

    # Ranked variant: the five best scenes anywhere in the archive,
    # regardless of threshold.
    print("\n5 best matching scenes (exact, ranked):")
    for hit in engine.knn_subsequences(scene, k=5):
        print(
            f"  {hit.sequence_id!r} frames {hit.offset}-"
            f"{hit.offset + hit.length}: Dmean = {hit.distance:.4f}"
        )


if __name__ == "__main__":
    main()
