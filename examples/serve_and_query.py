"""Serving a corpus concurrently: QueryEngine embedded and over HTTP.

The paper's search answers one query against one database; this example
shows the :mod:`repro.service` layer that turns it into a long-lived
server:

1. wrap a :class:`~repro.SequenceDatabase` in a
   :class:`~repro.QueryEngine` (worker pool + snapshot isolation);
2. watch the ε-aware cache at work — a repeated query is a *hit*, a
   tighter-threshold query is a *refine* that skips the index entirely,
   and both return exactly what an uncached search would;
3. insert a sequence while searches are in flight — readers never block,
   and the cache is patched rather than flushed;
4. serve the same engine over HTTP and query it with
   :class:`~repro.ServiceClient`.

Run with::

    python examples/serve_and_query.py
"""

import threading

from repro import QueryEngine, SequenceDatabase, ServiceClient, SimilaritySearch
from repro.datagen import generate_queries, generate_video_corpus
from repro.service.http import serve


def main() -> None:
    # 1. Sixty simulated video streams behind a four-worker engine.
    corpus = generate_video_corpus(60, length_range=(56, 160), seed=11)
    database = SequenceDatabase(dimension=3)
    for stream in corpus:
        database.add(stream)
    reference = SimilaritySearch(database.clone())  # uncached ground truth

    engine = QueryEngine(database, workers=4, cache_size=32)
    query = generate_queries(
        {sid: database.sequence(sid) for sid in database.ids()},
        count=1,
        length_range=(40, 70),
        seed=12,
    )[0]

    # 2. miss -> hit -> refine, all byte-identical to the uncached search.
    first = engine.search_detailed(query, 0.12)
    repeat = engine.search_detailed(query, 0.12)
    tighter = engine.search_detailed(query, 0.05)
    print(f"epsilon=0.12 first:  cache={first.cache:6s} "
          f"answers={len(first.result.answers)}")
    print(f"epsilon=0.12 again:  cache={repeat.cache:6s} "
          f"answers={len(repeat.result.answers)}")
    print(f"epsilon=0.05 (<=):   cache={tighter.cache:6s} "
          f"answers={len(tighter.result.answers)} — Phase 3 only")
    if first.cache != "miss" or repeat.cache != "hit" or tighter.cache != "refine":
        raise AssertionError("unexpected cache outcomes")
    if repeat.result.answers != reference.search(query, 0.12).answers:
        raise AssertionError("cache hit changed the answer set")
    if tighter.result.answers != reference.search(query, 0.05).answers:
        raise AssertionError("cache refine changed the answer set")

    # 3. A write concurrent with reads: snapshot isolation, no locks for
    # readers, and the cached entry is patched for the new sequence only.
    results: list[int] = []

    def hammer() -> None:
        for _ in range(5):
            results.append(len(engine.search(query, 0.12).answers))

    readers = [threading.Thread(target=hammer) for _ in range(3)]
    for thread in readers:
        thread.start()
    engine.insert(corpus[0].points * 0.98 + 0.01, sequence_id="spliced")
    for thread in readers:
        thread.join()
    after = engine.search_detailed(query, 0.12)
    print(f"after insert:        cache={after.cache:6s} "
          f"answers={len(after.result.answers)} "
          f"(snapshot v{after.snapshot_version}, "
          f"{len(results)} concurrent reads OK)")

    # 4. The same engine over HTTP, with the stdlib-only client.
    server = serve(engine, port=0)
    port = server.server_address[1]
    accept_loop = threading.Thread(target=server.serve_forever, daemon=True)
    accept_loop.start()
    try:
        client = ServiceClient(f"http://127.0.0.1:{port}")
        health = client.healthz()
        reply = client.search(query.points, 0.12)
        if reply["answers"] != list(after.result.answers):
            raise AssertionError("HTTP answers differ from embedded answers")
        stats = client.stats()
        print(f"over HTTP:           {health['sequences']} sequences, "
              f"cache={reply['cache']}, "
              f"hit ratio {stats['cache']['hit_ratio']:.2f}, "
              f"p95 {stats['latency_ms']['p95']:.1f} ms")
    finally:
        server.shutdown()
        server.server_close()
        engine.close()
    print("clean shutdown")


if __name__ == "__main__":
    main()
